"""Holt–Winters (triple exponential smoothing) forecasting.

The paper's prediction module is pluggable ("our control-theoretic model
is generic and can work with any demand prediction techniques"); for
diurnal cloud demand the standard strong baseline between naive-seasonal
and full ARIMA is additive Holt–Winters: exponentially-weighted level,
trend and seasonal components updated online per observation — no refit
per step, O(1) per update, robust to the on/off patterns that break AR.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import Predictor

__all__ = ["HoltWintersPredictor"]


class HoltWintersPredictor(Predictor):
    """Additive Holt–Winters with online updates.

    Args:
        num_series: number of series forecast jointly.
        season_length: seasonality period (24 for hourly data).
        alpha: level smoothing factor in (0, 1).
        beta: trend smoothing factor in [0, 1) (0 disables trend).
        gamma: seasonal smoothing factor in [0, 1).

    State is initialized from the first full season (level = season mean,
    trend = 0, seasonal = deviations from the mean); before that the
    forecast degrades to last-value persistence.
    """

    def __init__(
        self,
        num_series: int,
        season_length: int = 24,
        alpha: float = 0.35,
        beta: float = 0.05,
        gamma: float = 0.25,
    ) -> None:
        super().__init__(num_series)
        if season_length < 1:
            raise ValueError(f"season_length must be >= 1, got {season_length}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        if not 0.0 <= gamma < 1.0:
            raise ValueError(f"gamma must be in [0, 1), got {gamma}")
        self.season_length = season_length
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._level: np.ndarray | None = None
        self._trend: np.ndarray | None = None
        self._seasonal: np.ndarray | None = None  # (S, season_length)
        self._phase = 0

    def reset(self) -> None:
        super().reset()
        self._level = None
        self._trend = None
        self._seasonal = None
        self._phase = 0

    def _initialize(self) -> None:
        """Seed level/trend/seasonal from the first complete season."""
        history = self.history  # (S, T)
        first_season = history[:, : self.season_length]
        self._level = first_season.mean(axis=1)
        self._trend = np.zeros(self.num_series)
        self._seasonal = first_season - self._level[:, None]
        self._phase = 0
        # Replay observations after the first season through the updates.
        for column in history[:, self.season_length :].T:
            self._update(column)

    def _update(self, value: np.ndarray) -> None:
        assert self._level is not None
        phase = self._phase % self.season_length
        seasonal = self._seasonal[:, phase]
        previous_level = self._level
        self._level = self.alpha * (value - seasonal) + (1.0 - self.alpha) * (
            previous_level + self._trend
        )
        self._trend = (
            self.beta * (self._level - previous_level)
            + (1.0 - self.beta) * self._trend
        )
        self._seasonal[:, phase] = (
            self.gamma * (value - self._level) + (1.0 - self.gamma) * seasonal
        )
        self._phase += 1

    def observe(self, values: np.ndarray) -> None:
        super().observe(values)
        if self._level is not None:
            self._update(self.history[:, -1])
        elif self.num_observations == self.season_length:
            self._initialize()

    def predict(self, horizon: int) -> np.ndarray:
        self._require_history(horizon)
        if self._level is None:
            last = self._history[-1]
            return np.tile(last[:, None], (1, horizon))
        forecast = np.empty((self.num_series, horizon))
        for step in range(horizon):
            phase = (self._phase + step) % self.season_length
            forecast[:, step] = (
                self._level
                + (step + 1) * self._trend
                + self._seasonal[:, phase]
            )
        return np.maximum(forecast, 0.0)
