"""Autoregressive AR(p) predictor — the paper's prediction model [24].

Each series is fit independently by ridge-regularized least squares on its
own lagged values (with an intercept), and multi-step forecasts are
produced by iterating the one-step model on its own outputs.  This is
deliberately the *simple* AR scheme the paper uses, whose inaccuracy under
volatile inputs is exactly what makes long horizons hurt in Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import Predictor

__all__ = ["ARPredictor"]


class ARPredictor(Predictor):
    """Per-series AR(p) with intercept, refit on every call.

    Args:
        num_series: number of series.
        order: number of lags ``p`` (>= 1).
        ridge: L2 regularization strength (>= 0); a small positive value
            keeps the normal equations well posed on short histories.
        clip_factor: forecasts are clipped to
            ``[0, clip_factor * max(history)]`` per series.  Iterated AR
            models on volatile inputs can extrapolate explosively
            (estimated lag weights above 1 compound over the horizon); any
            production forecaster bounds its output, and without the bound
            a long-horizon MPC would be handed astronomically-scaled
            programs.  Set ``None`` to disable.

    Before ``order + 2`` observations exist the model falls back to
    last-value persistence.
    """

    def __init__(
        self,
        num_series: int,
        order: int = 3,
        ridge: float = 1e-6,
        clip_factor: float | None = 3.0,
    ) -> None:
        super().__init__(num_series)
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if ridge < 0:
            raise ValueError(f"ridge must be nonnegative, got {ridge}")
        if clip_factor is not None and clip_factor <= 0:
            raise ValueError(f"clip_factor must be positive, got {clip_factor}")
        self.order = order
        self.ridge = ridge
        self.clip_factor = clip_factor

    def _fit_series(self, series: np.ndarray) -> np.ndarray:
        """Fit one series; returns ``[intercept, w_1..w_p]`` (w_1 = lag 1)."""
        p = self.order
        n = series.size
        rows = n - p
        design = np.empty((rows, p + 1))
        design[:, 0] = 1.0
        for lag in range(1, p + 1):
            design[:, lag] = series[p - lag : n - lag]
        target = series[p:]
        gram = design.T @ design + self.ridge * np.eye(p + 1)
        return np.linalg.solve(gram, design.T @ target)

    def predict(self, horizon: int) -> np.ndarray:
        self._require_history(horizon)
        history = self.history
        if history.shape[1] < self.order + 2:
            return np.tile(history[:, -1:], (1, horizon))
        forecast = np.empty((self.num_series, horizon))
        for series_index in range(self.num_series):
            series = history[series_index]
            weights = self._fit_series(series)
            ceiling = (
                self.clip_factor * float(series.max())
                if self.clip_factor is not None
                else np.inf
            )
            # state[0] is lag 1, state[1] lag 2, ...
            state = series[-self.order :][::-1].copy()
            for step in range(horizon):
                value = weights[0] + float(weights[1:] @ state)
                value = min(max(value, 0.0), ceiling)
                forecast[series_index, step] = value
                state = np.concatenate(([value], state[:-1]))
        return forecast
