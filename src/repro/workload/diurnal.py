"""Diurnal demand envelopes.

The paper: "requests from the same location follow an on-off stochastic
process that has high arrival rate during working hours (8am-5pm) and low
arrival rate at night".  Two envelopes are provided:

* :class:`OnOffEnvelope` — the paper's literal two-level pattern with a
  configurable smoothing ramp at the edges (an instantaneous step is both
  unrealistic and needlessly hostile to AR prediction).
* :class:`DiurnalEnvelope` — a smooth sinusoidal day shape, useful for the
  horizon-sweep experiments where differentiable demand is convenient.

Both are callables mapping *local* hour-of-day to a multiplicative factor
in ``[low, high]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["OnOffEnvelope", "WeeklyEnvelope", "DiurnalEnvelope"]


def _as_local_hours(hours: np.ndarray, utc_offset_hours: float) -> np.ndarray:
    return (np.asarray(hours, dtype=float) + utc_offset_hours) % 24.0


@dataclass(frozen=True)
class OnOffEnvelope:
    """Two-level working-hours envelope with linear ramps.

    Attributes:
        on_start_hour: local hour work begins (paper: 8).
        on_end_hour: local hour work ends (paper: 17).
        high: multiplicative rate during working hours.
        low: multiplicative rate at night (0 < low <= high).
        ramp_hours: width of the linear transition at each edge.
    """

    on_start_hour: float = 8.0
    on_end_hour: float = 17.0
    high: float = 1.0
    low: float = 0.25
    ramp_hours: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.on_start_hour < self.on_end_hour <= 24.0:
            raise ValueError("need 0 <= on_start < on_end <= 24")
        if not 0.0 < self.low <= self.high:
            raise ValueError("need 0 < low <= high")
        if self.ramp_hours < 0:
            raise ValueError("ramp_hours must be nonnegative")

    def factor(self, utc_hours: np.ndarray, utc_offset_hours: float = 0.0) -> np.ndarray:
        """Envelope factor at the given UTC hours for a site at the offset."""
        local = _as_local_hours(utc_hours, utc_offset_hours)
        if self.ramp_hours == 0.0:  # exact-zero: hard on/off edges  # reprolint: disable=RL004
            inside = (local >= self.on_start_hour) & (local < self.on_end_hour)
            return np.where(inside, self.high, self.low)
        half = self.ramp_hours / 2.0
        rise = np.clip((local - (self.on_start_hour - half)) / self.ramp_hours, 0.0, 1.0)
        fall = np.clip(((self.on_end_hour + half) - local) / self.ramp_hours, 0.0, 1.0)
        level = np.minimum(rise, fall)
        return self.low + (self.high - self.low) * level


@dataclass(frozen=True)
class WeeklyEnvelope:
    """A daily envelope modulated by a weekday/weekend cycle.

    Real service demand has a second seasonality the paper's one-day plots
    do not exercise: weekends run lighter.  This wrapper scales any daily
    envelope by ``weekend_factor`` on days 5 and 6 of each week (hour 0 is
    the start of day 0, a weekday).

    Attributes:
        daily: the within-day envelope being modulated.
        weekend_factor: multiplicative weekend level in (0, 1].
    """

    daily: "OnOffEnvelope | DiurnalEnvelope"
    weekend_factor: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.weekend_factor <= 1.0:
            raise ValueError(
                f"weekend_factor must be in (0, 1], got {self.weekend_factor}"
            )

    def factor(self, utc_hours: np.ndarray, utc_offset_hours: float = 0.0) -> np.ndarray:
        """Envelope factor at the given UTC hours for a site at the offset."""
        base = self.daily.factor(utc_hours, utc_offset_hours=utc_offset_hours)
        local = np.asarray(utc_hours, dtype=float) + utc_offset_hours
        day_of_week = np.floor(local / 24.0) % 7
        weekend = (day_of_week == 5) | (day_of_week == 6)
        return np.where(weekend, base * self.weekend_factor, base)


@dataclass(frozen=True)
class DiurnalEnvelope:
    """Smooth sinusoidal day shape peaking at ``peak_hour`` local time.

    Attributes:
        peak_hour: local hour of maximum demand.
        high: factor at the peak.
        low: factor at the trough (0 < low <= high).
    """

    peak_hour: float = 14.0
    high: float = 1.0
    low: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError("peak_hour must be in [0, 24)")
        if not 0.0 < self.low <= self.high:
            raise ValueError("need 0 < low <= high")

    def factor(self, utc_hours: np.ndarray, utc_offset_hours: float = 0.0) -> np.ndarray:
        """Envelope factor at the given UTC hours for a site at the offset."""
        local = _as_local_hours(utc_hours, utc_offset_hours)
        phase = 2.0 * math.pi * (local - self.peak_hour) / 24.0
        unit = 0.5 * (1.0 + np.cos(phase))  # 1 at peak, 0 at peak+12h
        return self.low + (self.high - self.low) * unit
