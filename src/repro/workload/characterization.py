"""Workload characterization: fit and regenerate demand statistics.

The paper's prediction module cites workload-characterization models
(Bodik et al. [25]) as an alternative to AR forecasting.  This module
implements the core of that approach for diurnal cloud workloads:

* :func:`characterize` — decompose an observed ``(V, K)`` demand matrix
  into a per-location seasonal profile (mean rate per hour-of-day) plus a
  multiplicative residual distribution.
* :meth:`WorkloadProfile.generate` — synthesize new demand matched to the
  fitted statistics (seasonal means, residual dispersion), for what-if
  studies and for stress-testing controllers on *statistically faithful*
  but unseen traces.
* :func:`seasonal_strength` — the fraction of variance the seasonal
  profile explains, a one-number predictability score (high = Figure 10
  regime, low = Figure 9 regime).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorkloadProfile", "characterize", "seasonal_strength"]

_MIN_RATE = 1e-9


@dataclass(frozen=True)
class WorkloadProfile:
    """Fitted statistics of a diurnal workload.

    Attributes:
        locations: location labels, length ``V``.
        seasonal_means: per-location mean rate per season phase, shape
            ``(V, season_length)``.
        residual_cv: per-location coefficient of variation of the
            multiplicative residual ``observed / seasonal_mean``.
        season_length: phases per season (24 for hourly daily data).
    """

    locations: tuple[str, ...]
    seasonal_means: np.ndarray
    residual_cv: np.ndarray
    season_length: int

    def __post_init__(self) -> None:
        V = len(self.locations)
        if self.seasonal_means.shape != (V, self.season_length):
            raise ValueError("seasonal_means shape mismatch")
        if self.residual_cv.shape != (V,):
            raise ValueError("residual_cv shape mismatch")
        if np.any(self.seasonal_means < 0) or np.any(self.residual_cv < 0):
            raise ValueError("profile statistics must be nonnegative")

    def expected_rates(self, num_periods: int, start_phase: int = 0) -> np.ndarray:
        """The noise-free seasonal rates for ``num_periods`` periods."""
        if num_periods < 1:
            raise ValueError("num_periods must be >= 1")
        phases = (start_phase + np.arange(num_periods)) % self.season_length
        return self.seasonal_means[:, phases]

    def generate(
        self,
        num_periods: int,
        rng: np.random.Generator,
        start_phase: int = 0,
    ) -> np.ndarray:
        """Sample a synthetic demand matrix matched to the profile.

        Residuals are lognormal with the fitted per-location CV (always
        positive, right-skewed — the shape real demand residuals have).

        Returns:
            Array of shape ``(V, num_periods)``.
        """
        expected = self.expected_rates(num_periods, start_phase)
        V = expected.shape[0]
        samples = np.empty_like(expected)
        for v in range(V):
            cv = self.residual_cv[v]
            if cv <= 0:
                samples[v] = expected[v]
                continue
            sigma = np.sqrt(np.log1p(cv**2))
            noise = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=num_periods)
            samples[v] = expected[v] * noise
        return samples


def characterize(
    demand: np.ndarray,
    season_length: int = 24,
    locations: tuple[str, ...] | None = None,
) -> WorkloadProfile:
    """Fit a :class:`WorkloadProfile` to an observed demand matrix.

    Args:
        demand: observed rates, shape ``(V, K)`` with ``K >= season_length``
            (at least one full season).
        season_length: the seasonality period.
        locations: labels; defaults to ``("v0", ...)``.

    Returns:
        The fitted profile.

    Raises:
        ValueError: if less than one full season of data is supplied.
    """
    demand = np.asarray(demand, dtype=float)
    if demand.ndim != 2:
        raise ValueError(f"demand must be (V, K), got shape {demand.shape}")
    V, K = demand.shape
    if season_length < 1:
        raise ValueError("season_length must be >= 1")
    if K < season_length:
        raise ValueError(
            f"need at least one full season ({season_length}) of data, got {K}"
        )
    if np.any(demand < 0):
        raise ValueError("demand must be nonnegative")
    if locations is None:
        locations = tuple(f"v{i}" for i in range(V))

    means = np.empty((V, season_length))
    for phase in range(season_length):
        means[:, phase] = demand[:, phase::season_length].mean(axis=1)

    phases = np.arange(K) % season_length
    expected = means[:, phases]
    ratio = demand / np.maximum(expected, _MIN_RATE)
    # Only phases with meaningful expected rate inform the residual CV.
    cv = np.empty(V)
    for v in range(V):
        valid = expected[v] > 10 * _MIN_RATE
        cv[v] = float(ratio[v, valid].std()) if valid.any() else 0.0

    return WorkloadProfile(
        locations=tuple(locations),
        seasonal_means=means,
        residual_cv=cv,
        season_length=season_length,
    )


def seasonal_strength(demand: np.ndarray, season_length: int = 24) -> float:
    """Fraction of demand variance explained by the seasonal profile.

    1.0 means perfectly periodic (the Figure 10 regime: predict the
    profile and you are done); near 0 means the seasonal mean explains
    nothing (the Figure 9 regime, where long horizons hurt).

    Returns:
        A value in ``[0, 1]`` (clipped).
    """
    demand = np.asarray(demand, dtype=float)
    profile = characterize(demand, season_length=season_length)
    K = demand.shape[1]
    expected = profile.expected_rates(K)
    total_variance = float(((demand - demand.mean(axis=1, keepdims=True)) ** 2).sum())
    if total_variance <= 0:
        return 1.0
    residual_variance = float(((demand - expected) ** 2).sum())
    return float(np.clip(1.0 - residual_variance / total_variance, 0.0, 1.0))
