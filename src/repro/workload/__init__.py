"""Demand-generation substrate.

The paper generates requests "from a non-homogeneous Poisson process that
considers both the population of each [city] as well as the time of day",
with an on-off diurnal pattern (high 8 am–5 pm local, low at night).

* :mod:`repro.workload.cities` — population weights of the access cities.
* :mod:`repro.workload.diurnal` — on/off diurnal envelopes with per-city
  time-zone phase.
* :mod:`repro.workload.poisson` — non-homogeneous Poisson sampling.
* :mod:`repro.workload.spikes` — flash-crowd injection (the "unexpected
  behaviour" the prediction module must survive).
* :mod:`repro.workload.demand` — the ``(V, K)`` demand matrix builder the
  DSPP consumes.
* :mod:`repro.workload.characterization` — fit/regenerate diurnal demand
  statistics (the Bodik-style characterization models the paper cites).
"""

from repro.workload.cities import population_weights
from repro.workload.diurnal import DiurnalEnvelope, OnOffEnvelope, WeeklyEnvelope
from repro.workload.poisson import nhpp_counts, nhpp_arrival_times
from repro.workload.spikes import FlashCrowd, apply_flash_crowds
from repro.workload.demand import DemandMatrix, build_demand_matrix, constant_demand
from repro.workload.characterization import (
    WorkloadProfile,
    characterize,
    seasonal_strength,
)

__all__ = [
    "population_weights",
    "DiurnalEnvelope",
    "OnOffEnvelope",
    "WeeklyEnvelope",
    "nhpp_counts",
    "nhpp_arrival_times",
    "FlashCrowd",
    "apply_flash_crowds",
    "DemandMatrix",
    "build_demand_matrix",
    "constant_demand",
    "WorkloadProfile",
    "characterize",
    "seasonal_strength",
]
