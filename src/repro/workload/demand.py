"""The demand matrix ``D`` (shape ``(V, K)``) the DSPP consumes.

Combines the population weights, per-city diurnal envelopes and NHPP
sampling into the paper's request generator: city ``v``'s rate at period
``k`` is ``total_rate * weight_v * envelope(local_hour_k)``, optionally
perturbed by flash crowds, then realized by Poisson sampling (or kept as
the deterministic mean rate for noise-free studies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.geo import ACCESS_CITIES, City
from repro.workload.cities import population_weights
from repro.workload.diurnal import DiurnalEnvelope, OnOffEnvelope
from repro.workload.poisson import nhpp_counts
from repro.workload.spikes import FlashCrowd, apply_flash_crowds

__all__ = ["DemandMatrix", "build_demand_matrix", "constant_demand"]


@dataclass(frozen=True)
class DemandMatrix:
    """Per-location, per-period demand arrival rates.

    Attributes:
        locations: location labels (rows), length ``V``.
        rates: array of shape ``(V, K)``; ``rates[v, k]`` is ``D_k^v``, the
            average request arrival rate from location ``v`` at period ``k``.
        period_hours: duration of one period in hours.
    """

    locations: tuple[str, ...]
    rates: np.ndarray
    period_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.rates.ndim != 2:
            raise ValueError(f"rates must be 2-D, got shape {self.rates.shape}")
        if self.rates.shape[0] != len(self.locations):
            raise ValueError(
                f"{len(self.locations)} locations but rates has "
                f"{self.rates.shape[0]} rows"
            )
        if np.any(self.rates < 0):
            raise ValueError("demand rates must be nonnegative")
        if self.period_hours <= 0:
            raise ValueError("period_hours must be positive")

    @property
    def num_locations(self) -> int:
        return self.rates.shape[0]

    @property
    def num_periods(self) -> int:
        return self.rates.shape[1]

    def at_period(self, k: int) -> np.ndarray:
        """The demand vector ``D_k`` (length ``V``)."""
        return self.rates[:, k].copy()

    def total_per_period(self) -> np.ndarray:
        """Aggregate demand per period (length ``K``)."""
        return self.rates.sum(axis=0)

    def window(self, start: int, length: int) -> "DemandMatrix":
        """Sub-matrix of ``length`` periods starting at ``start``."""
        if start < 0 or length < 1 or start + length > self.num_periods:
            raise ValueError(
                f"window [{start}, {start + length}) outside [0, {self.num_periods})"
            )
        return DemandMatrix(
            locations=self.locations,
            rates=self.rates[:, start : start + length].copy(),
            period_hours=self.period_hours,
        )


def build_demand_matrix(
    total_peak_rate: float,
    num_periods: int,
    cities: tuple[City, ...] = ACCESS_CITIES,
    envelope: OnOffEnvelope | DiurnalEnvelope | None = None,
    flash_crowds: list[FlashCrowd] | None = None,
    rng: np.random.Generator | None = None,
    period_hours: float = 1.0,
    start_utc_hour: float = 0.0,
) -> DemandMatrix:
    """Build the paper's population-weighted diurnal demand matrix.

    Args:
        total_peak_rate: nationwide aggregate rate when every city is at its
            envelope peak (requests per time unit).
        num_periods: horizon length ``K``.
        cities: demand-originating cities.
        envelope: diurnal envelope (defaults to the paper's 8am–5pm on/off
            pattern); applied in each city's local time.
        flash_crowds: optional spike events.
        rng: if given, rates are realized by Poisson sampling around the
            mean (the paper's stochastic generator); if ``None``, the
            deterministic mean rates are returned.
        period_hours: period duration.
        start_utc_hour: UTC hour of period 0.

    Returns:
        A :class:`DemandMatrix` with one row per city.

    Raises:
        ValueError: on non-positive peak rate or empty horizon.
    """
    if total_peak_rate <= 0:
        raise ValueError(f"total_peak_rate must be positive, got {total_peak_rate}")
    if num_periods < 1:
        raise ValueError(f"num_periods must be >= 1, got {num_periods}")
    envelope = envelope or OnOffEnvelope()
    weights = population_weights(cities)
    hours = start_utc_hour + np.arange(num_periods, dtype=float) * period_hours

    rates = np.empty((len(cities), num_periods))
    for row, (city, weight) in enumerate(zip(cities, weights)):
        factor = envelope.factor(hours, utc_offset_hours=city.utc_offset_hours)
        rates[row] = total_peak_rate * weight * factor

    if flash_crowds:
        rates = apply_flash_crowds(rates, flash_crowds)
    if rng is not None:
        # Realize the NHPP: observed per-period rate = sampled count / duration.
        counts = nhpp_counts(rates, rng, period_duration=period_hours)
        rates = counts / period_hours

    return DemandMatrix(
        locations=tuple(city.key for city in cities),
        rates=rates,
        period_hours=period_hours,
    )


def constant_demand(
    rates_per_location: np.ndarray | list[float],
    num_periods: int,
    locations: tuple[str, ...] | None = None,
    period_hours: float = 1.0,
) -> DemandMatrix:
    """A time-invariant demand matrix (Figures 5 and 10 use this).

    Args:
        rates_per_location: length-``V`` vector of constant rates.
        num_periods: horizon length.
        locations: labels; defaults to ``("v0", "v1", ...)``.
        period_hours: period duration.
    """
    vector = np.asarray(rates_per_location, dtype=float).ravel()
    if locations is None:
        locations = tuple(f"v{i}" for i in range(vector.size))
    rates = np.tile(vector[:, None], (1, num_periods))
    return DemandMatrix(locations=tuple(locations), rates=rates, period_hours=period_hours)
