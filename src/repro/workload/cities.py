"""Population weighting of access-network demand.

Requests in the paper's evaluation are weighted by city population; this
module turns the city database into normalized weights.
"""

from __future__ import annotations

import numpy as np

from repro.topology.geo import ACCESS_CITIES, City

__all__ = ["population_weights", "utc_offsets"]


def population_weights(cities: tuple[City, ...] = ACCESS_CITIES) -> np.ndarray:
    """Normalized population weights (sum to 1) in city order.

    Raises:
        ValueError: if the tuple is empty or total population is zero.
    """
    if not cities:
        raise ValueError("need at least one city")
    populations = np.array([city.population for city in cities], dtype=float)
    total = populations.sum()
    if total <= 0:
        raise ValueError("total population must be positive")
    return populations / total


def utc_offsets(cities: tuple[City, ...] = ACCESS_CITIES) -> np.ndarray:
    """UTC offsets (hours) in city order, for diurnal phase alignment."""
    return np.array([city.utc_offset_hours for city in cities], dtype=float)
