"""Flash-crowd injection.

Section III notes that "demand and resource price can behave in an
unexpected manner, e.g., flash-crowd effect or system failure" — the cases
a prediction-driven controller must survive.  A :class:`FlashCrowd`
multiplies a location's base rate by a spike that ramps up quickly and
decays exponentially, the standard flash-crowd shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["FlashCrowd", "apply_flash_crowds"]


@dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd event at a single location.

    Attributes:
        location_index: column of the demand matrix the spike hits.
        start_period: period the ramp begins.
        peak_multiplier: rate multiplier at the spike's peak (> 1).
        ramp_periods: periods from onset to peak (>= 1, linear ramp).
        decay_periods: exponential-decay time constant after the peak.
    """

    location_index: int
    start_period: int
    peak_multiplier: float
    ramp_periods: int = 1
    decay_periods: float = 3.0

    def __post_init__(self) -> None:
        if self.location_index < 0 or self.start_period < 0:
            raise ValueError("location_index and start_period must be >= 0")
        if self.peak_multiplier <= 1.0:
            raise ValueError(f"peak_multiplier must exceed 1, got {self.peak_multiplier}")
        if self.ramp_periods < 1:
            raise ValueError(f"ramp_periods must be >= 1, got {self.ramp_periods}")
        if self.decay_periods <= 0:
            raise ValueError(f"decay_periods must be positive, got {self.decay_periods}")

    def multiplier(self, period: int) -> float:
        """The rate multiplier this event applies at ``period`` (>= 1)."""
        if period < self.start_period:
            return 1.0
        elapsed = period - self.start_period
        peak_at = self.ramp_periods
        extra = self.peak_multiplier - 1.0
        if elapsed <= peak_at:
            return 1.0 + extra * (elapsed / peak_at)
        return 1.0 + extra * math.exp(-(elapsed - peak_at) / self.decay_periods)


def apply_flash_crowds(rates: np.ndarray, events: list[FlashCrowd]) -> np.ndarray:
    """Apply flash-crowd events to a ``(V, K)`` rate matrix.

    Multipliers of events hitting the same location compound.

    Args:
        rates: base rate matrix, shape ``(V, K)``.
        events: flash crowds to inject.

    Returns:
        A new matrix; the input is not modified.

    Raises:
        IndexError: if an event's location index is out of range.
    """
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 2:
        raise ValueError(f"rates must be 2-D (V, K), got shape {rates.shape}")
    result = rates.copy()
    num_locations, num_periods = rates.shape
    for event in events:
        if event.location_index >= num_locations:
            raise IndexError(
                f"flash crowd at location {event.location_index} but only "
                f"{num_locations} locations"
            )
        multipliers = np.array([event.multiplier(k) for k in range(num_periods)])
        result[event.location_index] *= multipliers
    return result
