"""Non-homogeneous Poisson process (NHPP) sampling.

Two granularities are offered:

* :func:`nhpp_counts` — per-period request *counts* given a per-period rate
  vector (what the discrete-time DSPP consumes: the observed demand
  ``D_k^v`` is the realized arrival rate for period ``k``).
* :func:`nhpp_arrival_times` — exact continuous arrival *times* via
  Lewis–Shedler thinning, used by tests to validate the count sampler and
  available for fine-grained simulations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["nhpp_counts", "nhpp_arrival_times", "empirical_rates"]


def nhpp_counts(
    rates: np.ndarray,
    rng: np.random.Generator,
    period_duration: float = 1.0,
) -> np.ndarray:
    """Sample per-period arrival counts of an NHPP.

    Within each period the rate is treated as constant (piecewise-constant
    intensity), so counts are independent Poisson draws with mean
    ``rate * period_duration``.

    Args:
        rates: nonnegative per-period rates, any shape (e.g. ``(V, K)``).
        rng: randomness source.
        period_duration: duration of one period in rate time-units.

    Returns:
        Integer counts with the same shape as ``rates``.

    Raises:
        ValueError: on negative rates or non-positive duration.
    """
    rates = np.asarray(rates, dtype=float)
    if np.any(rates < 0):
        raise ValueError("rates must be nonnegative")
    if period_duration <= 0:
        raise ValueError(f"period_duration must be positive, got {period_duration}")
    return rng.poisson(rates * period_duration)


def nhpp_arrival_times(
    rate_fn: Callable[[float], float],
    rate_upper_bound: float,
    horizon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample exact NHPP arrival times on ``[0, horizon)`` by thinning.

    Lewis–Shedler: draw homogeneous arrivals at ``rate_upper_bound`` and
    accept each at time ``t`` with probability ``rate_fn(t) / bound``.

    Args:
        rate_fn: intensity function; must satisfy
            ``0 <= rate_fn(t) <= rate_upper_bound`` on the horizon.
        rate_upper_bound: a true upper bound on the intensity (> 0).
        horizon: end of the sampling window (> 0).
        rng: randomness source.

    Returns:
        Sorted array of accepted arrival times.

    Raises:
        ValueError: on bad bounds, or if ``rate_fn`` exceeds the bound
            (detected at a proposed point).
    """
    if rate_upper_bound <= 0:
        raise ValueError(f"rate_upper_bound must be positive, got {rate_upper_bound}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")

    times: list[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_upper_bound)
        if t >= horizon:
            break
        intensity = rate_fn(t)
        if intensity < 0 or intensity > rate_upper_bound * (1 + 1e-12):
            raise ValueError(
                f"rate_fn({t}) = {intensity} outside [0, {rate_upper_bound}]"
            )
        if rng.random() < intensity / rate_upper_bound:
            times.append(t)
    return np.asarray(times)


def empirical_rates(
    arrival_times: np.ndarray, num_periods: int, period_duration: float = 1.0
) -> np.ndarray:
    """Bin continuous arrival times into per-period empirical rates.

    The inverse of the granularity gap between the two samplers; used by
    tests to check that thinning and count sampling agree in distribution.

    Returns:
        Array of shape ``(num_periods,)`` with arrivals-per-time-unit rates.
    """
    if num_periods < 1:
        raise ValueError(f"num_periods must be >= 1, got {num_periods}")
    if period_duration <= 0:
        raise ValueError(f"period_duration must be positive, got {period_duration}")
    edges = np.arange(num_periods + 1, dtype=float) * period_duration
    counts, _ = np.histogram(np.asarray(arrival_times, dtype=float), bins=edges)
    return counts / period_duration
