"""Reproduction of "Dynamic Service Placement in Geographically Distributed
Clouds" (Zhang, Zhu, Zhani, Boutaba — IEEE ICDCS 2012).

The package is organized bottom-up:

* :mod:`repro.solvers` — convex-QP machinery (ADMM solver, KKT checks,
  dual-decomposition coordinator).
* :mod:`repro.queueing` — M/M/1 delay model and SLA linearization.
* :mod:`repro.topology` — geographic topology substrate (synthetic tier-1
  backbone, transit-stub augmentation, bipartite latency extraction).
* :mod:`repro.pricing` — regional electricity-market price models.
* :mod:`repro.workload` — non-homogeneous Poisson demand generation.
* :mod:`repro.prediction` — demand/price predictors (AR, seasonal, oracle).
* :mod:`repro.core` — the DSPP linear-quadratic formulation and exact solver.
* :mod:`repro.control` — the MPC controller (Algorithm 1) and closed loop.
* :mod:`repro.routing` — proportional request routing (eq. 13).
* :mod:`repro.game` — multi-provider resource-competition game (Section VI).
* :mod:`repro.packing` — FFD bin packing for the exact-capacity argument.
* :mod:`repro.simulation` — discrete-time engine gluing everything together.
* :mod:`repro.baselines` — static/reactive/greedy placement baselines.
* :mod:`repro.experiments` — per-figure reproduction harnesses (Figs. 3–10).
* :mod:`repro.contracts` — opt-in runtime shape/dtype contracts
  (``REPRO_CONTRACTS=1``) backing the static guarantees of
  :mod:`repro.devtools.lint` (`reprolint`, the repo-specific linter).

The most commonly used entry points are re-exported lazily at the top level,
so ``from repro import solve_dspp, MPCController`` works without importing
the whole package eagerly.
"""

from __future__ import annotations

import importlib

__version__ = "1.0.0"

# name -> (module, attribute) for lazy re-export.
_EXPORTS = {
    "DSPPInstance": ("repro.core.instance", "DSPPInstance"),
    "DSPPSolution": ("repro.core.dspp", "DSPPSolution"),
    "solve_dspp": ("repro.core.dspp", "solve_dspp"),
    "MPCConfig": ("repro.control.mpc", "MPCConfig"),
    "MPCController": ("repro.control.mpc", "MPCController"),
    "ClosedLoopResult": ("repro.control.loop", "ClosedLoopResult"),
    "run_closed_loop": ("repro.control.loop", "run_closed_loop"),
    "ServiceProvider": ("repro.game.players", "ServiceProvider"),
    "BestResponseConfig": ("repro.game.best_response", "BestResponseConfig"),
    "BestResponseResult": ("repro.game.best_response", "BestResponseResult"),
    "compute_equilibrium": ("repro.game.best_response", "compute_equilibrium"),
    "Scenario": ("repro.simulation.scenario", "Scenario"),
    "build_paper_scenario": ("repro.simulation.scenario", "build_paper_scenario"),
    "save_scenario": ("repro.io", "save_scenario"),
    "load_scenario": ("repro.io", "load_scenario"),
    "generate_report": ("repro.report", "generate_report"),
    "analyze_run": ("repro.analysis", "analyze_run"),
    "check_shapes": ("repro.contracts", "check_shapes"),
    "ShapeContractError": ("repro.contracts", "ShapeContractError"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
