#!/usr/bin/env python3
"""Quickstart: solve one DSPP and run the MPC controller end to end.

This is the 60-second tour of the library:

1. build a small ready-made scenario (topology latencies -> SLA
   coefficients, diurnal demand, fluctuating prices),
2. solve the *offline* DSPP exactly (the clairvoyant optimum),
3. run the receding-horizon MPC controller (Algorithm 1) against the same
   traces with a last-value predictor, and
4. compare realized costs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCConfig, MPCController, run_closed_loop, solve_dspp
from repro.prediction.naive import LastValuePredictor
from repro.simulation.scenario import build_small_scenario


def main() -> None:
    scenario = build_small_scenario(num_periods=12, num_datacenters=2, num_locations=3)
    instance = scenario.instance
    print(f"scenario: {instance.num_datacenters} data centers, "
          f"{instance.num_locations} locations, {scenario.num_periods} periods")

    # --- offline optimum (knows the whole future) ------------------------
    # The closed loop observes period 0 and controls periods 1..K-1, so
    # the fair clairvoyant comparison solves exactly those periods.
    offline = solve_dspp(instance, scenario.demand[:, 1:], scenario.prices[:, 1:])
    print(f"\noffline optimum:       J = {offline.objective:10.2f} "
          f"({offline.qp.iterations} QP iterations)")

    # --- online MPC (Algorithm 1) ----------------------------------------
    controller = MPCController(
        instance,
        demand_predictor=LastValuePredictor(instance.num_locations),
        price_predictor=LastValuePredictor(instance.num_datacenters),
        config=MPCConfig(window=3),
    )
    closed = run_closed_loop(controller, scenario.demand, scenario.prices)
    print(f"MPC closed loop:       J = {closed.total_cost:10.2f} "
          f"(unmet demand {closed.total_unmet_demand:.2f} request-periods)")

    # --- where did the servers go? ----------------------------------------
    servers = closed.servers_per_datacenter()
    print("\nservers per data center over time:")
    header = "  period  " + "  ".join(f"{dc:>8s}" for dc in instance.datacenters)
    print(header)
    for period, row in enumerate(servers, start=1):
        cells = "  ".join(f"{value:8.2f}" for value in row)
        print(f"  {period:6d}  {cells}")

    ratio = closed.total_cost / offline.objective
    print(f"\nonline/offline cost ratio: {ratio:.3f} "
          "(receding horizon pays for not knowing the future)")


if __name__ == "__main__":
    main()
