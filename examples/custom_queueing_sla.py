#!/usr/bin/env python3
"""Beyond M/M/1: general service times and per-pair SLA bounds.

The paper claims its framework adapts to "other queueing models" and
formulates the SLA bound per (data center, location) pair.  This example
exercises both generalizations end to end:

1. servers with *deterministic* (M/D/1) and *heavy-tailed* (lognormal,
   SCV = 4) service times, priced identically — the burstier fleet needs
   visibly more servers for the same SLA;
2. a premium region with a 60 ms bound next to best-effort regions at
   150 ms — the controller concentrates the premium region's servers at
   its nearest site, where the tight budget is physically achievable.

Run:  python examples/custom_queueing_sla.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCConfig, MPCController, run_closed_loop
from repro.core.instance import DSPPInstance
from repro.prediction.oracle import OraclePredictor
from repro.queueing.mg1 import mg1_sla_coefficient_matrix
from repro.queueing.sla import sla_coefficient_matrix

LATENCY_S = np.array(
    [
        [0.010, 0.040, 0.060],   # west DC
        [0.040, 0.010, 0.030],   # central DC
        [0.060, 0.030, 0.010],   # east DC
    ]
)
MU = 25.0
K = 12


def run_with_coefficients(a: np.ndarray) -> tuple[float, np.ndarray]:
    instance = DSPPInstance(
        datacenters=("west", "central", "east"),
        locations=("v_west", "v_central", "v_east"),
        sla_coefficients=a,
        reconfiguration_weights=np.full(3, 0.05),
        capacities=np.full(3, np.inf),
        initial_state=np.zeros((3, 3)),
    )
    demand = np.full((3, K), 300.0)
    prices = np.ones((3, K))
    controller = MPCController(
        instance,
        OraclePredictor(demand),
        OraclePredictor(prices),
        MPCConfig(window=3),
    )
    result = run_closed_loop(controller, demand, prices)
    return result.total_cost, result.trajectory.states[-1]


def main() -> None:
    print("== 1. service-time distribution (same mu, same SLA) ==")
    rows = []
    for name, scv in (("M/D/1 (deterministic)", 0.0),
                      ("M/M/1 (paper)", 1.0),
                      ("heavy-tailed (SCV=4)", 4.0)):
        a = mg1_sla_coefficient_matrix(LATENCY_S, 0.150, MU, scv=scv)
        cost, final = run_with_coefficients(a)
        rows.append((name, final.sum(), cost))
    print(f"{'service model':<24s} {'servers (final)':>15s} {'total cost':>11s}")
    for name, servers, cost in rows:
        print(f"{name:<24s} {servers:15.1f} {cost:11.1f}")
    print("-> burstier service needs more headroom per request;"
          " deterministic service halves the queueing budget.\n")

    print("== 2. per-pair SLA bounds (premium west region) ==")
    bounds = np.array([0.060, 0.150, 0.150])  # d_bar per *location*
    a = sla_coefficient_matrix(LATENCY_S, bounds[None, :], MU)
    print("which pairs can serve the premium region at all?")
    for l, dc in enumerate(("west", "central", "east")):
        feasible = np.isfinite(a[l, 0])
        print(f"  {dc:8s} -> v_west: {'feasible' if feasible else 'SLA-infeasible'}")
    cost, final = run_with_coefficients(a)
    print("final allocation (rows = DCs, cols = regions):")
    print(np.array2string(final, precision=1, suppress_small=True))
    print("-> the 60 ms budget excludes the far data centers outright; the"
          " premium region is pinned to its nearby site.")


if __name__ == "__main__":
    main()
