#!/usr/bin/env python3
"""Surviving a flash crowd: prediction failure and the capacity cushion.

Section III admits that "demand and resource price can behave in an
unexpected manner, e.g., flash-crowd effect" — the case no predictor
trained on history can see coming.  This script injects a 6x flash crowd
into New York's demand on day two of the paper scenario and compares
three controller configurations:

* seasonal predictor, no cushion      — the crowd punches straight through,
* seasonal predictor, r = 1.4 cushion — the Section IV-B reservation
  ratio absorbs the ramp until the controller catches up,
* oracle predictor                    — what perfect information would do.

Run:  python examples/flash_crowd_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCConfig, MPCController, run_closed_loop
from repro.prediction.naive import SeasonalNaivePredictor
from repro.prediction.oracle import OraclePredictor
from repro.simulation.scenario import build_paper_scenario
from repro.workload.spikes import FlashCrowd

SPIKE_START = 36  # hour 12 of day two
SPIKE = FlashCrowd(
    location_index=0,  # New York is the first access city
    start_period=SPIKE_START,
    peak_multiplier=6.0,
    ramp_periods=1,
    decay_periods=3.0,
)


def run_configuration(name, ratio, oracle, seed=17):
    scenario = build_paper_scenario(
        num_periods=48,
        total_peak_rate=900.0,
        reservation_ratio=ratio,
        flash_crowds=[SPIKE],
        seed=seed,
    )
    instance = scenario.instance
    if oracle:
        demand_predictor = OraclePredictor(scenario.demand)
        price_predictor = OraclePredictor(scenario.prices)
    else:
        demand_predictor = SeasonalNaivePredictor(
            instance.num_locations, season_length=24
        )
        price_predictor = SeasonalNaivePredictor(
            instance.num_datacenters, season_length=24
        )
    controller = MPCController(
        instance,
        demand_predictor,
        price_predictor,
        MPCConfig(window=3, slack_penalty=100.0),
    )
    result = run_closed_loop(controller, scenario.demand, scenario.prices)

    # Shortfall against the bare SLA (cushion scales true service ability).
    bare_coeff = instance.demand_coefficients * ratio
    served = np.einsum("lv,tlv->tv", bare_coeff, result.trajectory.states)
    realized = scenario.demand[:, 1:].T
    unmet = np.maximum(realized - served, 0.0)
    spike_window = slice(SPIKE_START - 1, SPIKE_START + 7)
    return {
        "name": name,
        "cost": result.total_cost,
        "unmet_total": float(unmet.sum()),
        "unmet_spike": float(unmet[spike_window, 0].sum()),
        "spike_demand": float(realized[spike_window, 0].sum()),
    }


def main() -> None:
    rows = [
        run_configuration("seasonal, r=1.0", 1.0, oracle=False),
        run_configuration("seasonal, r=1.4", 1.4, oracle=False),
        run_configuration("oracle,   r=1.0", 1.0, oracle=True),
    ]
    print("flash crowd: 6x New York demand at hour 36, decaying over ~3 h\n")
    print(f"{'configuration':<18s} {'total cost':>11s} {'unmet (all)':>12s} "
          f"{'unmet @NY spike':>16s} {'spike loss %':>13s}")
    print("-" * 75)
    for row in rows:
        loss = 100.0 * row["unmet_spike"] / max(row["spike_demand"], 1e-9)
        print(f"{row['name']:<18s} {row['cost']:11.1f} {row['unmet_total']:12.1f} "
              f"{row['unmet_spike']:16.1f} {loss:12.1f}%")

    print("\nreading: the cushion trades steady-state cost for spike"
          " absorption; only clairvoyance avoids the loss entirely.")


if __name__ == "__main__":
    main()
