#!/usr/bin/env python3
"""Single service provider over one day of the paper's evaluation setup.

Reconstructs Section VII-A: the 24-city US access-network population, four
data centers (San Jose, Houston, Atlanta, Chicago) priced by their
regional electricity markets, non-homogeneous Poisson demand with the
8am-5pm on/off pattern, and the MPC controller balancing latency SLAs
against power prices.  Prints hour-by-hour allocation per data center —
the combined view behind Figures 4 and 5.

Run:  python examples/single_provider_diurnal.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCConfig, MPCController
from repro.prediction.naive import SeasonalNaivePredictor
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import build_paper_scenario


def main() -> None:
    scenario = build_paper_scenario(
        num_periods=48,          # two days: day one trains the predictor
        total_peak_rate=1200.0,  # requests/second nationwide at peak
        reservation_ratio=1.25,  # Section IV-B capacity cushion
        seed=7,
    )
    instance = scenario.instance
    controller = MPCController(
        instance,
        demand_predictor=SeasonalNaivePredictor(
            instance.num_locations, season_length=24
        ),
        price_predictor=SeasonalNaivePredictor(
            instance.num_datacenters, season_length=24
        ),
        config=MPCConfig(window=4, slack_penalty=100.0),
    )
    engine = SimulationEngine(scenario, controller)
    result = engine.run()

    print("hour-by-hour allocation, day 2 (after one day of history):")
    print("  hour  " + "  ".join(f"{dc[:12]:>12s}" for dc in instance.datacenters)
          + "     demand   $/srv avg")
    per_dc = result.states.sum(axis=2)  # (K-1, L)
    for k in range(24, 47):
        hour = k % 24
        demand = scenario.demand[:, k + 1].sum()
        price = scenario.prices[:, k + 1].mean()
        cells = "  ".join(f"{per_dc[k, l]:12.1f}" for l in range(instance.num_datacenters))
        print(f"  {hour:4d}  {cells}   {demand:8.0f}   {price:9.3f}")

    summary = result.summary
    print(f"\ntotals over the run:")
    print(f"  allocation cost      {summary.total_allocation_cost:12.2f}")
    print(f"  reconfiguration cost {summary.total_reconfiguration_cost:12.2f}")
    print(f"  unserved demand      {summary.total_unserved_demand:12.2f} request-periods")
    print(f"  mean latency         {summary.mean_latency_ms * 1e3:12.2f} ms "
          f"(SLA bound {scenario.sla.max_latency * 1e3:.0f} ms)")

    # The price-chasing signature of Figure 5: correlation between each
    # DC's allocation share and its price should be negative.
    shares = per_dc / np.maximum(per_dc.sum(axis=1, keepdims=True), 1e-9)
    print("\ncorr(allocation share, price) per data center:")
    for l, dc in enumerate(instance.datacenters):
        corr = np.corrcoef(shares[:, l], scenario.prices[l, 1:])[0, 1]
        print(f"  {dc:16s} {corr:+.3f}")


if __name__ == "__main__":
    main()
