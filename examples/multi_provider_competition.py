#!/usr/bin/env python3
"""Multiple service providers competing for scarce data-center capacity.

Reconstructs Section VII-B: several SPs with random private parameters
(service rate, SLA bound, server size, reconfiguration weights) all want
the cheapest data center, whose capacity is a bottleneck.  Algorithm 2's
iterative best response with dual-decomposition quotas computes the Nash
equilibrium; the script then

* verifies it is an equilibrium by unilateral-deviation checks
  (Definition 2), and
* compares it against the exact social-welfare optimum, demonstrating
  Theorem 1 (price of stability = 1).

Run:  python examples/multi_provider_competition.py
"""

from __future__ import annotations

import numpy as np

from repro.game.best_response import BestResponseConfig, compute_equilibrium
from repro.game.efficiency import efficiency_ratio
from repro.game.equilibrium import verify_equilibrium
from repro.game.players import random_providers
from repro.game.swp import solve_swp


def main() -> None:
    rng = np.random.default_rng(42)
    datacenters = ("dallas_cheap", "virginia", "oregon")
    locations = ("east", "south", "west", "midwest")
    latency_ms = rng.uniform(10.0, 60.0, size=(3, 4))

    providers = random_providers(
        num_providers=5,
        datacenters=datacenters,
        locations=locations,
        latency_ms=latency_ms,
        horizon=6,
        rng=rng,
        demand_scale=120.0,
    )
    # Make the first data center clearly cheapest so everyone wants in.
    providers = [
        type(p)(p.name, p.instance, p.demand, np.vstack([p.prices[0] * 0.25, p.prices[1:]]))
        for p in providers
    ]
    capacity = np.array([150.0, 2000.0, 2000.0])
    print("capacity:", dict(zip(datacenters, capacity)))
    for p in providers:
        print(f"  {p.name}: server size {p.instance.server_size:.0f}, "
              f"total demand {p.demand.sum():.0f} requests")

    config = BestResponseConfig(epsilon=1e-4, slack_penalty=1e3)
    print("\nrunning Algorithm 2 (best response + quota coordination)...")
    equilibrium = compute_equilibrium(providers, capacity, config)
    print(f"  converged: {equilibrium.converged} after {equilibrium.iterations} rounds")
    print(f"  total cost at equilibrium: {equilibrium.total_cost:.2f}")
    print(f"  unserved demand: {equilibrium.total_shortfall:.4f}")
    print("  final quota of the bottleneck DC per provider:")
    for p, quota in zip(providers, equilibrium.quotas[:, 0]):
        print(f"    {p.name}: {quota:8.2f}")

    print("\nverifying Nash property (Definition 2, unilateral deviations)...")
    report = verify_equilibrium(
        providers,
        equilibrium.solutions,
        capacity,
        slack_penalty=config.slack_penalty,
        tolerance=0.05,
    )
    worst = report.max_improvement
    print(f"  best unilateral improvement any SP can find: {worst * 100:.2f}%"
          f" -> {'equilibrium' if report.is_equilibrium else 'NOT an equilibrium'}")

    print("\nsolving the social welfare problem (one planner, same capacity)...")
    social = solve_swp(providers, capacity, slack_penalty=config.slack_penalty)
    ratio = efficiency_ratio(equilibrium.total_cost, social.total_cost)
    print(f"  social optimum: {social.total_cost:.2f}")
    print(f"  price of stability (Theorem 1 says -> 1): {ratio:.4f}")


if __name__ == "__main__":
    main()
