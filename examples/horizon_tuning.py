#!/usr/bin/env python3
"""How long should the prediction horizon be?  (Figures 6, 9 and 10.)

The paper's most practical finding: the right MPC window depends on how
predictable the inputs are.  This script sweeps the window in two regimes:

* **constant inputs** (trivially predictable) — cost falls monotonically
  with the window: look as far ahead as you can afford (Figure 10);
* **volatile inputs + AR forecasts** — cost is U-shaped with a short
  optimum (the paper found K = 2): long windows amplify forecast error
  (Figure 9).

Run:  python examples/horizon_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.control.tuning import select_window
from repro.core.instance import DSPPInstance
from repro.experiments.common import format_figure
from repro.experiments.fig9_horizon_cost_volatile import run_fig9, volatile_traces
from repro.experiments.fig10_horizon_cost_constant import run_fig10
from repro.prediction.ar import ARPredictor


def main() -> None:
    horizons = (1, 2, 3, 4, 6, 8)

    print("=" * 70)
    print("regime 1: constant demand and price (perfectly predictable)")
    print("=" * 70)
    constant = run_fig10(horizons=horizons)
    print(format_figure(constant))
    costs = constant.series["effective_cost"]
    print(f"\n-> longest window is {100 * (1 - costs[-1] / costs[0]):.1f}% cheaper "
          "than myopic control; anticipation is free when forecasts are exact.")

    print()
    print("=" * 70)
    print("regime 2: volatile demand and price, AR(2) forecasts")
    print("=" * 70)
    volatile = run_fig9(horizons=horizons, num_seeds=2)
    print(format_figure(volatile))
    effective = volatile.series["effective_cost"]
    best = int(volatile.x[int(np.argmin(effective))])
    print(f"\n-> best window here is {best} (paper: 2); beyond it, every extra "
          "period of bad forecast the controller trusts makes things worse.")
    print("\nrule of thumb from the paper: 'the optimal prediction horizon "
          "length is highly dependent on the accuracy of the prediction model'.")

    print()
    print("=" * 70)
    print("automation: let select_window() pick the horizon from history")
    print("=" * 70)
    instance = DSPPInstance(
        datacenters=("dc",),
        locations=("v",),
        sla_coefficients=np.array([[0.1]]),
        reconfiguration_weights=np.array([20.0]),
        capacities=np.array([np.inf]),
        initial_state=np.zeros((1, 1)),
    )
    rng = np.random.default_rng(1)
    demand, prices = volatile_traces(48, 1, 1, rng)
    selection = select_window(
        instance.with_initial_state(np.array([[demand[0, 0] * 0.1]])),
        demand,
        prices,
        lambda: (ARPredictor(1, order=2), ARPredictor(1, order=2)),
        candidates=horizons,
        slack_penalty=50.0,
    )
    print(f"replaying recent history picks window = {selection.best_window}")
    for window, score in zip(selection.candidates, selection.scores):
        marker = " <-- chosen" if window == selection.best_window else ""
        print(f"  W={window}: replay cost {score:10.1f}{marker}")


if __name__ == "__main__":
    main()
