#!/usr/bin/env python3
"""Price-aware geographic load balancing vs. classical baselines.

Runs the paper's controller and four reference policies over the same
realized day and prints a cost/SLA scoreboard:

* **mpc-oracle** — Algorithm 1 with perfect forecasts (upper bound),
* **mpc-ar** — Algorithm 1 with the paper's AR predictor,
* **static-peak** — size once for peak demand, never reconfigure,
* **reactive** — jump to the myopic optimum every period,
* **nearest-dc** — CDN-style latency-greedy placement (price-blind),
* **cost-greedy** — chase the cheapest data center every period.

Run:  python examples/price_aware_geo_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro import MPCConfig, MPCController, run_closed_loop
from repro.baselines.cost_greedy import run_cost_greedy
from repro.baselines.nearest import run_nearest_datacenter
from repro.baselines.reactive import run_reactive
from repro.baselines.static_opt import run_static_optimal
from repro.prediction.ar import ARPredictor
from repro.prediction.oracle import OraclePredictor
from repro.simulation.scenario import build_paper_scenario


def main() -> None:
    scenario = build_paper_scenario(
        num_periods=24,
        total_peak_rate=1000.0,
        reconfiguration_weight=0.5,
        seed=21,
    )
    instance = scenario.instance
    demand, prices = scenario.demand, scenario.prices

    rows: list[tuple[str, float, float, float]] = []

    def record(name: str, total: float, recon: float, unmet: float) -> None:
        rows.append((name, total, recon, unmet))

    oracle = MPCController(
        instance,
        OraclePredictor(demand),
        OraclePredictor(prices),
        MPCConfig(window=4),
    )
    result = run_closed_loop(oracle, demand, prices)
    record("mpc-oracle", result.total_cost,
           result.costs.reconfiguration_total, result.total_unmet_demand)

    ar = MPCController(
        instance,
        ARPredictor(instance.num_locations, order=2),
        ARPredictor(instance.num_datacenters, order=2),
        MPCConfig(window=3, slack_penalty=100.0),
    )
    result = run_closed_loop(ar, demand, prices)
    record("mpc-ar", result.total_cost,
           result.costs.reconfiguration_total, result.total_unmet_demand)

    for baseline in (
        run_static_optimal(instance, demand, prices),
        run_reactive(instance, demand, prices),
        run_nearest_datacenter(instance, demand, prices, scenario.latency.latency_ms),
        run_cost_greedy(instance, demand, prices),
    ):
        record(
            baseline.name,
            baseline.total_cost,
            baseline.costs.reconfiguration_total,
            baseline.total_unmet_demand,
        )

    print(f"{'policy':<14s} {'total cost':>12s} {'reconf cost':>12s} {'unmet demand':>13s}")
    print("-" * 54)
    for name, total, recon, unmet in sorted(rows, key=lambda r: r[1]):
        print(f"{name:<14s} {total:12.2f} {recon:12.2f} {unmet:13.2f}")

    best = min(rows, key=lambda r: r[1])
    print(f"\ncheapest policy: {best[0]}")
    print("note: unmet demand is free for the baselines here — a deployment "
          "would pay SLA penalties for it, widening the MPC advantage.")


if __name__ == "__main__":
    main()
