"""Figure 9 bench: long horizons hurt under volatile inputs.

Paper shape: with volatile demand and prices and the simple AR predictor,
cost is U-shaped in the horizon with the optimum at a *short* window
("setting K = 2 achieves lowest cost"), and long windows are measurably
worse than the best.
"""

import numpy as np

from repro.experiments.fig9_horizon_cost_volatile import run_fig9


def test_fig9_horizon_cost_volatile(run_figure):
    result = run_figure(run_fig9)
    effective = result.series["effective_cost"]
    best = int(result.x[int(np.argmin(effective))])
    # The optimum sits at a short horizon, as in the paper (K = 2 there).
    assert best <= 3
