"""Solver-path benchmark: persistent workspace, KKT backends, cold solves.

Times the MPC hot path at small / paper / large / xlarge / continental
scale:

* **cold** — the seed behaviour: every receding-horizon step rebuilds the
  stacked QP, re-equilibrates, re-factorizes the KKT system and solves
  (warm-started from the previous solution vector, as ``MPCController``
  always did);
* **workspace** — the persistent :class:`repro.core.dspp.DSPPWorkspace`
  path: one setup, then vector-only updates against the cached Ruiz
  scaling + KKT factorization, ADMM seeded from the stored iterates;
* **backends** — warm workspace steps under the scale's baseline vs
  candidate ``(kkt_backend, sparsify_columns)`` pair (sparse vs banded at
  the dense scales, dense-banded vs sparsified-Krylov at xlarge,
  sparsified-banded vs sparsified-Krylov at continental), with the worst
  per-step objective divergence between the two;
* **sweep** — the deterministic parallel sweep runner on a miniature fig9
  configuration, serial vs two processes, with a bit-identity check.

Every scale entry carries the *same* keys; measurements a scale skips
(the cold path beyond ``large``, where one sparse factorization takes
tens of seconds) are ``null`` rather than absent, so downstream parsers
never need per-scale special cases.  A ``scaling_curve`` section lists
the candidate-backend warm-step time against the problem volume
``L*V*W`` across every scale benchmarked, continental included.

Writes ``BENCH_solver.json`` at the repo root (override with ``--out``).
The cold-vs-workspace comparison solves the identical problem sequence
(the state advances along the cold trajectory); the backend comparison
runs two full closed-loop MPC sequences from the same data.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                    # full
    PYTHONPATH=src python benchmarks/run_bench.py --quick            # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --backend krylov \\
        --sparsify on --sla-density 0.5                              # pin one
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.solvers.qp as _qp
from repro.core.dspp import DSPPWorkspace, solve_dspp
from repro.core.instance import DSPPInstance
from repro.core.matrices import build_qp_structure, build_qp_vectors, build_stacked_qp
from repro.experiments.fig9_horizon_cost_volatile import run_fig9
from repro.solvers.qp import QPProblem, QPSettings

__all__ = ["main"]

# (L, V, W): data centers, locations, MPC window.  "paper" matches the
# source paper's evaluation scale; "continental" is the
# geo-distributed regime the column sparsifier and the matrix-free
# Krylov backend exist for.
SCALES: dict[str, tuple[int, int, int]] = {
    "small": (2, 6, 3),
    "paper": (4, 24, 6),
    "large": (6, 36, 8),
    "xlarge": (8, 64, 12),
    "continental": (32, 512, 24),
}

# Fraction of (l, v) pairs with a finite SLA coefficient.  Continental
# deployments are sparse by construction — most locations can only be
# served within their SLA by a handful of nearby centers.
SCALE_DENSITY: dict[str, float] = {
    "small": 1.0,
    "paper": 1.0,
    "large": 1.0,
    "xlarge": 0.25,
    "continental": 0.06,
}

# The baseline and candidate (kkt_backend, sparsify_columns) pairs each
# scale compares on its warm path.
SCALE_COMPARISON: dict[str, tuple[tuple[str, str], tuple[str, str]]] = {
    "small": (("sparse", "off"), ("banded", "off")),
    "paper": (("sparse", "off"), ("banded", "off")),
    "large": (("sparse", "off"), ("banded", "off")),
    # The acceptance comparison: pruning + matrix-free Krylov must beat
    # the dense direct-banded path once the pair grid is mostly unusable.
    "xlarge": (("banded", "off"), ("krylov", "on")),
    # A dense reference is intractable here (a 16384-wide block per
    # period); the sparsified banded backend is the exact reference.
    "continental": (("banded", "on"), ("krylov", "on")),
}

# Scales where the cold (rebuild-everything) path is impractically slow:
# one sparse factorization at xlarge takes tens of seconds.
_SKIP_COLD = frozenset({"xlarge", "continental"})

# Continental warm steps are seconds each; fewer suffice for a stable mean.
_CONTINENTAL_STEPS = 6


def _instance(
    L: int, V: int, seed: int, usable_density: float = 1.0
) -> DSPPInstance:
    rng = np.random.default_rng(seed)
    sla = rng.uniform(0.05, 0.2, size=(L, V))
    if usable_density < 1.0:
        pruned = rng.random(size=(L, V)) >= usable_density
        # Instance validation requires every location servable.
        for v in range(V):
            if pruned[:, v].all():
                pruned[int(rng.integers(0, L)), v] = False
        sla = np.where(pruned, np.inf, sla)
    return DSPPInstance(
        datacenters=tuple(f"d{i}" for i in range(L)),
        locations=tuple(f"v{i}" for i in range(V)),
        sla_coefficients=sla,
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=L),
        capacities=np.full(L, 1e5),
        initial_state=np.zeros((L, V)),
    )


def _observations(
    L: int, V: int, num_steps: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Smoothly varying demand/price streams (MPC-realistic: consecutive
    periods are similar, which is what iterate reuse exploits)."""
    rng = np.random.default_rng(seed)
    hours = np.arange(num_steps, dtype=float)
    diurnal = 1.0 + 0.4 * np.sin(2.0 * np.pi * hours / 24.0)
    demand = 30.0 * diurnal[None, :] * rng.uniform(0.8, 1.2, size=(V, 1))
    demand = demand + rng.normal(scale=1.0, size=(V, num_steps))
    demand = np.maximum(demand, 1.0)
    prices = rng.uniform(0.5, 2.0, size=(L, 1)) * diurnal[None, :]
    prices = np.maximum(prices + rng.normal(scale=0.05, size=(L, num_steps)), 0.05)
    return demand, prices


def _scale_steps(name: str, num_steps: int) -> int:
    return min(num_steps, _CONTINENTAL_STEPS) if name == "continental" else num_steps


def _null_scale_entry(name: str, num_steps: int) -> dict[str, object]:
    """The uniform per-scale schema, every measurement nulled out."""
    L, V, W = SCALES[name]
    return {
        "L": L,
        "V": V,
        "window": W,
        "num_steps": _scale_steps(name, num_steps),
        "usable_density": SCALE_DENSITY[name],
        "cold_step_ms": None,
        "warm_step_ms": None,
        "speedup": None,
        "max_objective_rel_diff": None,
        "solutions_match": None,
        "backends": None,
    }


def bench_mpc(name: str, num_steps: int, seed: int = 0) -> dict[str, object]:
    """Cold vs workspace re-solves over one receding-horizon sequence.

    Both paths solve the *identical* problem at every step (the state is
    advanced with the cold solution), so the per-step objectives are
    directly comparable: two eps-optimal answers to the same QP.  Cold is
    the seed MPC behaviour — rebuild + re-equilibrate + re-factorize each
    period, warm-started from the previous solution vector.
    """
    L, V, W = SCALES[name]
    instance = _instance(L, V, seed, usable_density=SCALE_DENSITY[name])
    demand, prices = _observations(L, V, num_steps + W, seed + 1)
    workspace = DSPPWorkspace()
    state = instance.initial_state
    cold_times: list[float] = []
    warm_times: list[float] = []
    objective_rel_diff: list[float] = []
    prev_qp = None
    for k in range(num_steps):
        instance_now = instance.with_initial_state(state)
        window_demand = demand[:, k : k + W]
        window_prices = prices[:, k : k + W]
        start = time.perf_counter()
        cold = solve_dspp(
            instance_now, window_demand, window_prices, warm_start=prev_qp
        )
        cold_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = solve_dspp(
            instance_now, window_demand, window_prices, workspace=workspace
        )
        warm_times.append(time.perf_counter() - start)
        prev_qp = cold.qp
        denom = max(abs(cold.objective), 1e-12)
        objective_rel_diff.append(abs(warm.objective - cold.objective) / denom)
        state = np.maximum(state + cold.first_control, 0.0)
    # Step 0 pays setup on both paths; the re-solve comparison starts at 1.
    cold_ms = 1e3 * float(np.mean(cold_times[1:]))
    warm_ms = 1e3 * float(np.mean(warm_times[1:]))
    worst_objective = float(np.max(objective_rel_diff))
    return {
        "cold_step_ms": round(cold_ms, 3),
        "warm_step_ms": round(warm_ms, 3),
        "speedup": round(cold_ms / warm_ms, 2),
        "max_objective_rel_diff": worst_objective,
        "solutions_match": bool(worst_objective <= 1e-5),
    }


def _warm_backend_loop(
    name: str, num_steps: int, backend: str, sparsify: str = "auto", seed: int = 0
) -> tuple[float, np.ndarray]:
    """One closed-loop MPC sequence through a persistent workspace.

    Returns the mean per-step wall time (step 0, which pays setup and the
    full first solve, is excluded) and the per-step objectives.
    """
    L, V, W = SCALES[name]
    instance = _instance(L, V, seed, usable_density=SCALE_DENSITY[name])
    demand, prices = _observations(L, V, num_steps + W, seed + 1)
    workspace = DSPPWorkspace()
    settings = QPSettings(
        early_polish=True, kkt_backend=backend, sparsify_columns=sparsify
    )
    current = instance
    times: list[float] = []
    objectives: list[float] = []
    for k in range(num_steps):
        start = time.perf_counter()
        solution = solve_dspp(
            current,
            demand[:, k : k + W],
            prices[:, k : k + W],
            settings=settings,
            workspace=workspace,
        )
        if k > 0:
            times.append(time.perf_counter() - start)
        objectives.append(solution.objective)
        current = current.with_initial_state(solution.trajectory.states[0])
    return float(np.mean(times)), np.asarray(objectives)


def bench_backends(name: str, num_steps: int, seed: int = 0) -> dict[str, object]:
    """Warm-step comparison of the scale's baseline vs candidate backend.

    Both loops consume the same instance and observation streams; each
    advances along its own closed-loop trajectory (the trajectories agree
    to solver tolerance, which the objective divergence column certifies).
    """
    (base_backend, base_sparsify), (cand_backend, cand_sparsify) = SCALE_COMPARISON[
        name
    ]
    base_s, base_obj = _warm_backend_loop(
        name, num_steps, base_backend, base_sparsify, seed
    )
    cand_s, cand_obj = _warm_backend_loop(
        name, num_steps, cand_backend, cand_sparsify, seed
    )
    worst = float(
        np.max(np.abs(base_obj - cand_obj) / np.maximum(np.abs(base_obj), 1e-12))
    )
    return {
        "baseline": {
            "backend": base_backend,
            "sparsify": base_sparsify,
            "warm_step_ms": round(1e3 * base_s, 3),
        },
        "candidate": {
            "backend": cand_backend,
            "sparsify": cand_sparsify,
            "warm_step_ms": round(1e3 * cand_s, 3),
        },
        "speedup": round(base_s / cand_s, 2),
        "max_objective_rel_diff": worst,
        "solutions_match": bool(worst <= 1e-9),
    }


def bench_ruiz(repeats: int, seed: int = 0) -> dict[str, object]:
    """Time Ruiz equilibration at paper scale, dense vs pruned layout.

    The dense figure tracks the data-array rewrite of the equilibrator;
    the pruned figure shows the additional win from running it over the
    sparsified column space (an xlarge-density paper-scale instance).
    """
    L, V, W = SCALES["paper"]
    instance = _instance(L, V, seed)
    rng = np.random.default_rng(seed + 1)
    demand = rng.uniform(10.0, 60.0, size=(V, W))
    prices = rng.uniform(0.5, 2.0, size=(L, W))
    stacked = build_stacked_qp(instance, demand, prices)
    problem = QPProblem.build(stacked.P, stacked.q, stacked.A, stacked.l, stacked.u)
    iterations = 10
    start = time.perf_counter()
    for _ in range(repeats):
        _qp._ruiz_equilibrate(problem, iterations)
    elapsed = time.perf_counter() - start

    pruned_instance = _instance(L, V, seed + 2, usable_density=0.25)
    structure = build_qp_structure(pruned_instance, W, elastic=False, sparsify=True)
    q, l, u = build_qp_vectors(structure, pruned_instance, demand, prices)
    pruned_problem = QPProblem.build(structure.P, q, structure.A, l, u)
    start = time.perf_counter()
    for _ in range(repeats):
        _qp._ruiz_equilibrate(pruned_problem, iterations)
    pruned_elapsed = time.perf_counter() - start
    return {
        "n": problem.num_variables,
        "m": problem.num_constraints,
        "n_pruned": pruned_problem.num_variables,
        "m_pruned": pruned_problem.num_constraints,
        "repeats": repeats,
        "scaling_iterations": iterations,
        "ms_per_equilibration": round(1e3 * elapsed / repeats, 3),
        "ms_per_equilibration_pruned": round(1e3 * pruned_elapsed / repeats, 3),
    }


def bench_sweep(quick: bool) -> dict[str, object]:
    """Serial vs 2-process fig9 sweep; checks bit-identical output."""
    kwargs = {
        "horizons": (1, 2, 3) if quick else (1, 2, 3, 4),
        "num_periods": 12 if quick else 24,
        "num_seeds": 2,
    }
    start = time.perf_counter()
    serial = run_fig9(jobs=1, **kwargs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_fig9(jobs=2, **kwargs)
    parallel_s = time.perf_counter() - start
    identical = all(
        np.array_equal(serial.series[key], parallel.series[key])
        for key in serial.series
    )
    return {
        "config": {k: list(v) if isinstance(v, tuple) else v for k, v in kwargs.items()},
        "serial_s": round(serial_s, 2),
        "parallel_s": round(parallel_s, 2),
        "jobs": 2,
        "bit_identical": bool(identical),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: fewer steps, small+paper only"
    )
    parser.add_argument(
        "--backend",
        choices=("both", "sparse", "banded", "krylov"),
        default="both",
        help="KKT backend(s) for the warm comparison: 'both' runs each "
        "scale's baseline-vs-candidate pair (default)",
    )
    parser.add_argument(
        "--sparsify",
        choices=("auto", "on", "off"),
        default="auto",
        help="column sparsification for a pinned --backend run",
    )
    parser.add_argument(
        "--sla-density",
        type=float,
        default=None,
        help="override the usable-pair fraction at every scale (0 < d <= 1)",
    )
    parser.add_argument("--out", default=None, help="output path (default: repo root)")
    args = parser.parse_args(argv)
    if args.sla_density is not None and not 0.0 < args.sla_density <= 1.0:
        parser.error(f"--sla-density must be in (0, 1], got {args.sla_density}")
    if args.sla_density is not None:
        for scale_name in SCALE_DENSITY:
            SCALE_DENSITY[scale_name] = args.sla_density

    out = (
        Path(args.out)
        if args.out is not None
        else Path(__file__).resolve().parent.parent / "BENCH_solver.json"
    )
    num_steps = 8 if args.quick else 24
    scales = ["small", "paper"] if args.quick else list(SCALES)

    results: dict[str, object] = {
        "benchmark": "persistent QP workspace + KKT backends vs cold MPC re-solves",
        "quick": bool(args.quick),
        "backend": args.backend,
        "sparsify": args.sparsify,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scales": {},
        "scaling_curve": [],
    }
    curve: list[dict[str, object]] = results["scaling_curve"]  # type: ignore[assignment]
    for name in scales:
        L, V, W = SCALES[name]
        steps = _scale_steps(name, num_steps)
        entry = _null_scale_entry(name, num_steps)
        if name in _SKIP_COLD:
            print(f"== mpc {name} ({steps} steps, cold path skipped)")
        else:
            print(f"== mpc {name} ({steps} steps)")
            entry.update(bench_mpc(name, steps))
            print(
                f"   cold {entry['cold_step_ms']} ms/step, "
                f"warm {entry['warm_step_ms']} ms/step, "
                f"speedup {entry['speedup']}x, match={entry['solutions_match']}"
            )
        if args.backend == "both":
            backends = bench_backends(name, steps)
            entry["backends"] = backends
            base = backends["baseline"]
            cand = backends["candidate"]
            print(
                f"   backends: {base['backend']}/{base['sparsify']} "
                f"{base['warm_step_ms']} ms/step vs "
                f"{cand['backend']}/{cand['sparsify']} "
                f"{cand['warm_step_ms']} ms/step, "
                f"speedup {backends['speedup']}x, "
                f"match={backends['solutions_match']}"
            )
            curve_ms = cand["warm_step_ms"]
            curve_variant = cand
        else:
            warm_s, _ = _warm_backend_loop(name, steps, args.backend, args.sparsify)
            variant = {
                "backend": args.backend,
                "sparsify": args.sparsify,
                "warm_step_ms": round(1e3 * warm_s, 3),
            }
            entry["backends"] = {
                "baseline": None,
                "candidate": variant,
                "speedup": None,
                "max_objective_rel_diff": None,
                "solutions_match": None,
            }
            print(f"   {args.backend} warm {variant['warm_step_ms']} ms/step")
            curve_ms = variant["warm_step_ms"]
            curve_variant = variant
        curve.append(
            {
                "scale": name,
                "lvw": L * V * W,
                "backend": curve_variant["backend"],
                "sparsify": curve_variant["sparsify"],
                "usable_density": SCALE_DENSITY[name],
                "warm_step_ms": curve_ms,
            }
        )
        results["scales"][name] = entry  # type: ignore[index]
    print("== ruiz equilibration (paper scale)")
    results["ruiz"] = bench_ruiz(repeats=3 if args.quick else 10)
    print(
        f"   dense {results['ruiz']['ms_per_equilibration']} ms, "  # type: ignore[index]
        f"pruned {results['ruiz']['ms_per_equilibration_pruned']} ms"  # type: ignore[index]
    )
    print("== parallel sweep (fig9 miniature)")
    results["sweep"] = bench_sweep(args.quick)
    print(
        f"   serial {results['sweep']['serial_s']} s, "  # type: ignore[index]
        f"2 procs {results['sweep']['parallel_s']} s, "  # type: ignore[index]
        f"bit_identical={results['sweep']['bit_identical']}"  # type: ignore[index]
    )

    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    scale_entries = results["scales"]  # type: ignore[assignment]
    paper = scale_entries.get("paper")  # type: ignore[union-attr]
    ok = bool(paper and paper.get("solutions_match") is not False)
    for name, entry in scale_entries.items():  # type: ignore[union-attr]
        backends = entry.get("backends") or {}
        if backends.get("solutions_match") is not None:
            ok = ok and bool(backends["solutions_match"])
            print(f"{name} backend speedup: {backends['speedup']}x")
    if paper and paper.get("speedup") is not None:
        print(f"paper-scale warm speedup: {paper['speedup']}x")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
