"""Solver-path benchmark: persistent workspace, KKT backends, cold solves.

Times the MPC hot path at small / paper / large / xlarge scale:

* **cold** — the seed behaviour: every receding-horizon step rebuilds the
  stacked QP, re-equilibrates, re-factorizes the KKT system and solves
  (warm-started from the previous solution vector, as ``MPCController``
  always did);
* **workspace** — the persistent :class:`repro.core.dspp.DSPPWorkspace`
  path: one setup, then vector-only updates against the cached Ruiz
  scaling + KKT factorization, ADMM seeded from the stored iterates;
* **backends** — warm workspace steps under ``kkt_backend="sparse"``
  (SuperLU) vs ``kkt_backend="banded"`` (the block-banded Schur
  recursion of :mod:`repro.solvers.banded`), with the worst per-step
  objective divergence between the two;
* **sweep** — the deterministic parallel sweep runner on a miniature fig9
  configuration, serial vs two processes, with a bit-identity check.

Writes ``BENCH_solver.json`` at the repo root (override with ``--out``).
The cold-vs-workspace comparison solves the identical problem sequence
(the state advances along the cold trajectory) and is skipped at xlarge,
where a single cold factorization takes tens of seconds; the backend
comparison runs two full closed-loop MPC sequences from the same data.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                    # full
    PYTHONPATH=src python benchmarks/run_bench.py --quick            # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --backend banded   # pin one
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.solvers.qp as _qp
from repro.core.dspp import DSPPWorkspace, solve_dspp
from repro.core.instance import DSPPInstance
from repro.core.matrices import build_stacked_qp
from repro.experiments.fig9_horizon_cost_volatile import run_fig9
from repro.solvers.qp import QPProblem, QPSettings

__all__ = ["main"]

# (L, V, W): data centers, locations, MPC window.  "paper" matches the
# source paper's evaluation scale.
SCALES: dict[str, tuple[int, int, int]] = {
    "small": (2, 6, 3),
    "paper": (4, 24, 6),
    "large": (6, 36, 8),
    "xlarge": (8, 64, 12),
}

# Scales where the cold (rebuild-everything) path is impractically slow:
# one sparse factorization at xlarge takes tens of seconds.
_SKIP_COLD = frozenset({"xlarge"})


def _instance(L: int, V: int, seed: int) -> DSPPInstance:
    rng = np.random.default_rng(seed)
    return DSPPInstance(
        datacenters=tuple(f"d{i}" for i in range(L)),
        locations=tuple(f"v{i}" for i in range(V)),
        sla_coefficients=rng.uniform(0.05, 0.2, size=(L, V)),
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=L),
        capacities=np.full(L, 1e5),
        initial_state=np.zeros((L, V)),
    )


def _observations(
    L: int, V: int, num_steps: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Smoothly varying demand/price streams (MPC-realistic: consecutive
    periods are similar, which is what iterate reuse exploits)."""
    rng = np.random.default_rng(seed)
    hours = np.arange(num_steps, dtype=float)
    diurnal = 1.0 + 0.4 * np.sin(2.0 * np.pi * hours / 24.0)
    demand = 30.0 * diurnal[None, :] * rng.uniform(0.8, 1.2, size=(V, 1))
    demand = demand + rng.normal(scale=1.0, size=(V, num_steps))
    demand = np.maximum(demand, 1.0)
    prices = rng.uniform(0.5, 2.0, size=(L, 1)) * diurnal[None, :]
    prices = np.maximum(prices + rng.normal(scale=0.05, size=(L, num_steps)), 0.05)
    return demand, prices


def bench_mpc(name: str, num_steps: int, seed: int = 0) -> dict[str, object]:
    """Cold vs workspace re-solves over one receding-horizon sequence.

    Both paths solve the *identical* problem at every step (the state is
    advanced with the cold solution), so the per-step objectives are
    directly comparable: two eps-optimal answers to the same QP.  Cold is
    the seed MPC behaviour — rebuild + re-equilibrate + re-factorize each
    period, warm-started from the previous solution vector.
    """
    L, V, W = SCALES[name]
    instance = _instance(L, V, seed)
    demand, prices = _observations(L, V, num_steps + W, seed + 1)
    workspace = DSPPWorkspace()
    state = instance.initial_state
    cold_times: list[float] = []
    warm_times: list[float] = []
    objective_rel_diff: list[float] = []
    prev_qp = None
    for k in range(num_steps):
        instance_now = instance.with_initial_state(state)
        window_demand = demand[:, k : k + W]
        window_prices = prices[:, k : k + W]
        start = time.perf_counter()
        cold = solve_dspp(
            instance_now, window_demand, window_prices, warm_start=prev_qp
        )
        cold_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = solve_dspp(
            instance_now, window_demand, window_prices, workspace=workspace
        )
        warm_times.append(time.perf_counter() - start)
        prev_qp = cold.qp
        denom = max(abs(cold.objective), 1e-12)
        objective_rel_diff.append(abs(warm.objective - cold.objective) / denom)
        state = np.maximum(state + cold.first_control, 0.0)
    # Step 0 pays setup on both paths; the re-solve comparison starts at 1.
    cold_ms = 1e3 * float(np.mean(cold_times[1:]))
    warm_ms = 1e3 * float(np.mean(warm_times[1:]))
    worst_objective = float(np.max(objective_rel_diff))
    return {
        "L": L,
        "V": V,
        "window": W,
        "num_steps": num_steps,
        "cold_step_ms": round(cold_ms, 3),
        "warm_step_ms": round(warm_ms, 3),
        "speedup": round(cold_ms / warm_ms, 2),
        "max_objective_rel_diff": worst_objective,
        "solutions_match": bool(worst_objective <= 1e-5),
    }


def _warm_backend_loop(
    name: str, num_steps: int, backend: str, seed: int = 0
) -> tuple[float, np.ndarray]:
    """One closed-loop MPC sequence through a persistent workspace.

    Returns the mean per-step wall time (step 0, which pays setup and the
    full first solve, is excluded) and the per-step objectives.
    """
    L, V, W = SCALES[name]
    instance = _instance(L, V, seed)
    demand, prices = _observations(L, V, num_steps + W, seed + 1)
    workspace = DSPPWorkspace()
    settings = QPSettings(early_polish=True, kkt_backend=backend)
    current = instance
    times: list[float] = []
    objectives: list[float] = []
    for k in range(num_steps):
        start = time.perf_counter()
        solution = solve_dspp(
            current,
            demand[:, k : k + W],
            prices[:, k : k + W],
            settings=settings,
            workspace=workspace,
        )
        if k > 0:
            times.append(time.perf_counter() - start)
        objectives.append(solution.objective)
        current = current.with_initial_state(solution.trajectory.states[0])
    return float(np.mean(times)), np.asarray(objectives)


def bench_backends(name: str, num_steps: int, seed: int = 0) -> dict[str, object]:
    """Warm-step comparison of the sparse and banded KKT backends.

    Both loops consume the same instance and observation streams; each
    advances along its own closed-loop trajectory (the trajectories agree
    to solver tolerance, which the objective divergence column certifies).
    """
    sparse_ms, sparse_obj = _warm_backend_loop(name, num_steps, "sparse", seed)
    banded_ms, banded_obj = _warm_backend_loop(name, num_steps, "banded", seed)
    worst = float(
        np.max(np.abs(sparse_obj - banded_obj) / np.maximum(np.abs(sparse_obj), 1e-12))
    )
    return {
        "sparse_warm_step_ms": round(1e3 * sparse_ms, 3),
        "banded_warm_step_ms": round(1e3 * banded_ms, 3),
        "banded_speedup": round(sparse_ms / banded_ms, 2),
        "max_objective_rel_diff": worst,
        "solutions_match": bool(worst <= 1e-9),
    }


def bench_ruiz(repeats: int, seed: int = 0) -> dict[str, object]:
    """Time Ruiz equilibration at paper scale (the satellite optimisation
    reuses post-scale column norms across iterations)."""
    L, V, W = SCALES["paper"]
    instance = _instance(L, V, seed)
    rng = np.random.default_rng(seed + 1)
    demand = rng.uniform(10.0, 60.0, size=(V, W))
    prices = rng.uniform(0.5, 2.0, size=(L, W))
    stacked = build_stacked_qp(instance, demand, prices)
    problem = QPProblem.build(stacked.P, stacked.q, stacked.A, stacked.l, stacked.u)
    iterations = 10
    start = time.perf_counter()
    for _ in range(repeats):
        _qp._ruiz_equilibrate(problem, iterations)
    elapsed = time.perf_counter() - start
    return {
        "n": problem.num_variables,
        "m": problem.num_constraints,
        "repeats": repeats,
        "scaling_iterations": iterations,
        "ms_per_equilibration": round(1e3 * elapsed / repeats, 3),
    }


def bench_sweep(quick: bool) -> dict[str, object]:
    """Serial vs 2-process fig9 sweep; checks bit-identical output."""
    kwargs = {
        "horizons": (1, 2, 3) if quick else (1, 2, 3, 4),
        "num_periods": 12 if quick else 24,
        "num_seeds": 2,
    }
    start = time.perf_counter()
    serial = run_fig9(jobs=1, **kwargs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_fig9(jobs=2, **kwargs)
    parallel_s = time.perf_counter() - start
    identical = all(
        np.array_equal(serial.series[key], parallel.series[key])
        for key in serial.series
    )
    return {
        "config": {k: list(v) if isinstance(v, tuple) else v for k, v in kwargs.items()},
        "serial_s": round(serial_s, 2),
        "parallel_s": round(parallel_s, 2),
        "jobs": 2,
        "bit_identical": bool(identical),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: fewer steps, small+paper only"
    )
    parser.add_argument(
        "--backend",
        choices=("both", "sparse", "banded"),
        default="both",
        help="KKT backend(s) for the warm comparison (default: both)",
    )
    parser.add_argument("--out", default=None, help="output path (default: repo root)")
    args = parser.parse_args(argv)

    out = (
        Path(args.out)
        if args.out is not None
        else Path(__file__).resolve().parent.parent / "BENCH_solver.json"
    )
    num_steps = 8 if args.quick else 24
    scales = ["small", "paper"] if args.quick else list(SCALES)

    results: dict[str, object] = {
        "benchmark": "persistent QP workspace + KKT backends vs cold MPC re-solves",
        "quick": bool(args.quick),
        "backend": args.backend,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scales": {},
    }
    for name in scales:
        entry: dict[str, object]
        if name in _SKIP_COLD:
            L, V, W = SCALES[name]
            entry = {"L": L, "V": V, "window": W, "num_steps": num_steps}
            print(f"== mpc {name} ({num_steps} steps, cold path skipped)")
        else:
            print(f"== mpc {name} ({num_steps} steps)")
            entry = bench_mpc(name, num_steps)
            print(
                f"   cold {entry['cold_step_ms']} ms/step, "
                f"warm {entry['warm_step_ms']} ms/step, "
                f"speedup {entry['speedup']}x, match={entry['solutions_match']}"
            )
        if args.backend == "both":
            backends = bench_backends(name, num_steps)
            entry["backends"] = backends
            print(
                f"   backends: sparse {backends['sparse_warm_step_ms']} ms/step, "
                f"banded {backends['banded_warm_step_ms']} ms/step, "
                f"banded speedup {backends['banded_speedup']}x, "
                f"match={backends['solutions_match']}"
            )
        else:
            warm_ms, _ = _warm_backend_loop(name, num_steps, args.backend)
            entry["backends"] = {
                f"{args.backend}_warm_step_ms": round(1e3 * warm_ms, 3)
            }
            print(f"   {args.backend} warm {round(1e3 * warm_ms, 3)} ms/step")
        results["scales"][name] = entry  # type: ignore[index]
    print("== ruiz equilibration (paper scale)")
    results["ruiz"] = bench_ruiz(repeats=3 if args.quick else 10)
    print(f"   {results['ruiz']['ms_per_equilibration']} ms")  # type: ignore[index]
    print("== parallel sweep (fig9 miniature)")
    results["sweep"] = bench_sweep(args.quick)
    print(
        f"   serial {results['sweep']['serial_s']} s, "  # type: ignore[index]
        f"2 procs {results['sweep']['parallel_s']} s, "  # type: ignore[index]
        f"bit_identical={results['sweep']['bit_identical']}"  # type: ignore[index]
    )

    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    scale_entries = results["scales"]  # type: ignore[assignment]
    paper = scale_entries.get("paper")  # type: ignore[union-attr]
    ok = bool(paper and paper.get("solutions_match", True))
    for name, entry in scale_entries.items():  # type: ignore[union-attr]
        backends = entry.get("backends", {})
        if "solutions_match" in backends:
            ok = ok and bool(backends["solutions_match"])
            print(f"{name} banded-vs-sparse speedup: {backends['banded_speedup']}x")
    if paper:
        print(f"paper-scale warm speedup: {paper['speedup']}x")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
