"""Solver-path benchmark: persistent workspace vs cold solves.

Times the MPC hot path three ways at small / paper / large scale:

* **cold** — the seed behaviour: every receding-horizon step rebuilds the
  stacked QP, re-equilibrates, re-factorizes the KKT system and solves
  (warm-started from the previous solution vector, as ``MPCController``
  always did);
* **workspace** — the persistent :class:`repro.core.dspp.DSPPWorkspace`
  path: one setup, then vector-only updates against the cached Ruiz
  scaling + KKT factorization, ADMM seeded from the stored iterates;
* **sweep** — the deterministic parallel sweep runner on a miniature fig9
  configuration, serial vs two processes, with a bit-identity check.

Writes ``BENCH_solver.json`` at the repo root (override with ``--out``).
Both paths solve the identical problem sequence (the state advances along
the cold trajectory), and the script records the worst per-step objective
divergence so the speedup is only claimed for matching solutions.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py          # full
    PYTHONPATH=src python benchmarks/run_bench.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

import repro.solvers.qp as _qp
from repro.core.dspp import DSPPWorkspace, solve_dspp
from repro.core.instance import DSPPInstance
from repro.core.matrices import build_stacked_qp
from repro.experiments.fig9_horizon_cost_volatile import run_fig9
from repro.solvers.qp import QPProblem

__all__ = ["main"]

# (L, V, W): data centers, locations, MPC window.  "paper" matches the
# source paper's evaluation scale.
SCALES: dict[str, tuple[int, int, int]] = {
    "small": (2, 6, 3),
    "paper": (4, 24, 6),
    "large": (6, 36, 8),
}


def _instance(L: int, V: int, seed: int) -> DSPPInstance:
    rng = np.random.default_rng(seed)
    return DSPPInstance(
        datacenters=tuple(f"d{i}" for i in range(L)),
        locations=tuple(f"v{i}" for i in range(V)),
        sla_coefficients=rng.uniform(0.05, 0.2, size=(L, V)),
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=L),
        capacities=np.full(L, 1e5),
        initial_state=np.zeros((L, V)),
    )


def _observations(
    L: int, V: int, num_steps: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Smoothly varying demand/price streams (MPC-realistic: consecutive
    periods are similar, which is what iterate reuse exploits)."""
    rng = np.random.default_rng(seed)
    hours = np.arange(num_steps, dtype=float)
    diurnal = 1.0 + 0.4 * np.sin(2.0 * np.pi * hours / 24.0)
    demand = 30.0 * diurnal[None, :] * rng.uniform(0.8, 1.2, size=(V, 1))
    demand = demand + rng.normal(scale=1.0, size=(V, num_steps))
    demand = np.maximum(demand, 1.0)
    prices = rng.uniform(0.5, 2.0, size=(L, 1)) * diurnal[None, :]
    prices = np.maximum(prices + rng.normal(scale=0.05, size=(L, num_steps)), 0.05)
    return demand, prices


def bench_mpc(name: str, num_steps: int, seed: int = 0) -> dict[str, object]:
    """Cold vs workspace re-solves over one receding-horizon sequence.

    Both paths solve the *identical* problem at every step (the state is
    advanced with the cold solution), so the per-step objectives are
    directly comparable: two eps-optimal answers to the same QP.  Cold is
    the seed MPC behaviour — rebuild + re-equilibrate + re-factorize each
    period, warm-started from the previous solution vector.
    """
    L, V, W = SCALES[name]
    instance = _instance(L, V, seed)
    demand, prices = _observations(L, V, num_steps + W, seed + 1)
    workspace = DSPPWorkspace()
    state = instance.initial_state
    cold_times: list[float] = []
    warm_times: list[float] = []
    objective_rel_diff: list[float] = []
    prev_qp = None
    for k in range(num_steps):
        instance_now = instance.with_initial_state(state)
        window_demand = demand[:, k : k + W]
        window_prices = prices[:, k : k + W]
        start = time.perf_counter()
        cold = solve_dspp(
            instance_now, window_demand, window_prices, warm_start=prev_qp
        )
        cold_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = solve_dspp(
            instance_now, window_demand, window_prices, workspace=workspace
        )
        warm_times.append(time.perf_counter() - start)
        prev_qp = cold.qp
        denom = max(abs(cold.objective), 1e-12)
        objective_rel_diff.append(abs(warm.objective - cold.objective) / denom)
        state = np.maximum(state + cold.first_control, 0.0)
    # Step 0 pays setup on both paths; the re-solve comparison starts at 1.
    cold_ms = 1e3 * float(np.mean(cold_times[1:]))
    warm_ms = 1e3 * float(np.mean(warm_times[1:]))
    worst_objective = float(np.max(objective_rel_diff))
    return {
        "L": L,
        "V": V,
        "window": W,
        "num_steps": num_steps,
        "cold_step_ms": round(cold_ms, 3),
        "warm_step_ms": round(warm_ms, 3),
        "speedup": round(cold_ms / warm_ms, 2),
        "max_objective_rel_diff": worst_objective,
        "solutions_match": bool(worst_objective <= 1e-5),
    }


def bench_ruiz(repeats: int, seed: int = 0) -> dict[str, object]:
    """Time Ruiz equilibration at paper scale (the satellite optimisation
    reuses post-scale column norms across iterations)."""
    L, V, W = SCALES["paper"]
    instance = _instance(L, V, seed)
    rng = np.random.default_rng(seed + 1)
    demand = rng.uniform(10.0, 60.0, size=(V, W))
    prices = rng.uniform(0.5, 2.0, size=(L, W))
    stacked = build_stacked_qp(instance, demand, prices)
    problem = QPProblem.build(stacked.P, stacked.q, stacked.A, stacked.l, stacked.u)
    iterations = 10
    start = time.perf_counter()
    for _ in range(repeats):
        _qp._ruiz_equilibrate(problem, iterations)
    elapsed = time.perf_counter() - start
    return {
        "n": problem.num_variables,
        "m": problem.num_constraints,
        "repeats": repeats,
        "scaling_iterations": iterations,
        "ms_per_equilibration": round(1e3 * elapsed / repeats, 3),
    }


def bench_sweep(quick: bool) -> dict[str, object]:
    """Serial vs 2-process fig9 sweep; checks bit-identical output."""
    kwargs = {
        "horizons": (1, 2, 3) if quick else (1, 2, 3, 4),
        "num_periods": 12 if quick else 24,
        "num_seeds": 2,
    }
    start = time.perf_counter()
    serial = run_fig9(jobs=1, **kwargs)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_fig9(jobs=2, **kwargs)
    parallel_s = time.perf_counter() - start
    identical = all(
        np.array_equal(serial.series[key], parallel.series[key])
        for key in serial.series
    )
    return {
        "config": {k: list(v) if isinstance(v, tuple) else v for k, v in kwargs.items()},
        "serial_s": round(serial_s, 2),
        "parallel_s": round(parallel_s, 2),
        "jobs": 2,
        "bit_identical": bool(identical),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: fewer steps, small+paper only"
    )
    parser.add_argument("--out", default=None, help="output path (default: repo root)")
    args = parser.parse_args(argv)

    out = (
        Path(args.out)
        if args.out is not None
        else Path(__file__).resolve().parent.parent / "BENCH_solver.json"
    )
    num_steps = 8 if args.quick else 24
    scales = ["small", "paper"] if args.quick else list(SCALES)

    results: dict[str, object] = {
        "benchmark": "persistent QP workspace vs cold MPC re-solves",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scales": {},
    }
    for name in scales:
        print(f"== mpc {name} ({num_steps} steps)")
        entry = bench_mpc(name, num_steps)
        results["scales"][name] = entry  # type: ignore[index]
        print(
            f"   cold {entry['cold_step_ms']} ms/step, "
            f"warm {entry['warm_step_ms']} ms/step, "
            f"speedup {entry['speedup']}x, match={entry['solutions_match']}"
        )
    print("== ruiz equilibration (paper scale)")
    results["ruiz"] = bench_ruiz(repeats=3 if args.quick else 10)
    print(f"   {results['ruiz']['ms_per_equilibration']} ms")  # type: ignore[index]
    print("== parallel sweep (fig9 miniature)")
    results["sweep"] = bench_sweep(args.quick)
    print(
        f"   serial {results['sweep']['serial_s']} s, "  # type: ignore[index]
        f"2 procs {results['sweep']['parallel_s']} s, "  # type: ignore[index]
        f"bit_identical={results['sweep']['bit_identical']}"  # type: ignore[index]
    )

    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    paper = results["scales"].get("paper")  # type: ignore[union-attr]
    ok = bool(paper and paper["solutions_match"])
    if paper:
        print(f"paper-scale warm speedup: {paper['speedup']}x")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
