"""Performance benchmarks: how the core solves scale with instance size.

Unlike the figure benches (single-shot simulation sweeps) these are true
microbenchmarks — pytest-benchmark runs them repeatedly and reports
stable timing distributions.  They track the three hot paths:

* one full DSPP solve at small / paper / large scale,
* one warm-started receding-horizon re-solve (the MPC inner loop), and
* one best-response round of the game.
"""

import numpy as np
import pytest

from repro.core.dspp import solve_dspp
from repro.core.instance import DSPPInstance
from repro.game.best_response import BestResponseConfig, compute_equilibrium
from repro.game.players import random_providers


def _instance(L, V, seed=0):
    rng = np.random.default_rng(seed)
    return DSPPInstance(
        datacenters=tuple(f"d{i}" for i in range(L)),
        locations=tuple(f"v{i}" for i in range(V)),
        sla_coefficients=rng.uniform(0.05, 0.2, size=(L, V)),
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=L),
        capacities=np.full(L, 1e5),
        initial_state=np.zeros((L, V)),
    )


def _traces(L, V, T, seed=1):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(10.0, 60.0, size=(V, T)),
        rng.uniform(0.5, 2.0, size=(L, T)),
    )


@pytest.mark.parametrize(
    "L,V,T",
    [(2, 3, 4), (4, 24, 6), (6, 30, 12)],
    ids=["small", "paper-scale", "large"],
)
def test_perf_dspp_solve(benchmark, L, V, T):
    instance = _instance(L, V)
    demand, prices = _traces(L, V, T)
    result = benchmark(solve_dspp, instance, demand, prices)
    assert result.qp.is_optimal


def test_perf_warm_started_resolve(benchmark):
    """The MPC inner loop: re-solve a slightly perturbed horizon."""
    instance = _instance(4, 24)
    demand, prices = _traces(4, 24, 6)
    base = solve_dspp(instance, demand, prices)

    def _resolve():
        return solve_dspp(
            instance, demand * 1.01, prices, warm_start=base.qp
        )

    result = benchmark(_resolve)
    assert result.qp.is_optimal


def test_perf_game_round(benchmark):
    """One full Algorithm 2 run on a small contended game."""
    rng = np.random.default_rng(5)
    latency = rng.uniform(10.0, 60.0, size=(3, 4))
    providers = random_providers(
        4, ("d0", "d1", "d2"), ("v0", "v1", "v2", "v3"),
        latency, 4, rng, demand_scale=80.0,
    )
    capacity = np.array([80.0, 2000.0, 2000.0])
    config = BestResponseConfig(epsilon=0.05, max_iterations=5)
    result = benchmark(compute_equilibrium, providers, capacity, config)
    assert result.total_cost > 0
