"""Figure 4 bench: allocation tracks fluctuating demand (1 DC, 1 access
network).

Paper shape: the controller "always tries to adjust the resource
allocation dynamically to match the demand, while minimizing the change of
number of servers at each time step" — high demand/allocation correlation,
near-complete coverage, less churn than reactive tracking.
"""

from repro.experiments.fig4_demand_tracking import run_fig4


def test_fig4_demand_tracking(run_figure):
    result = run_figure(run_fig4)
    assert result.series["servers_mpc"].min() > 0
