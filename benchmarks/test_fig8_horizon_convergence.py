"""Figure 8 bench: longer horizons speed up equilibrium convergence.

Paper shape: over horizons 1..10 with a fixed population and a tight
bottleneck, the number of best-response iterations trends downward as the
prediction horizon grows.
"""

from repro.experiments.fig8_horizon_convergence import run_fig8


def test_fig8_horizon_convergence(run_figure):
    result = run_figure(run_fig8)
    iterations = result.series["iterations"]
    assert iterations[-1] < iterations[0]
