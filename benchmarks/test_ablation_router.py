"""Ablation: proportional routing (eq. 13) vs the centralized optimum.

DESIGN.md §5: the paper chooses the proportional split because it is
decentralized and provably SLA-feasible.  This ablation quantifies the
mean-latency premium it pays over the latency-optimal transportation LP,
on allocations produced by the actual MPC controller over the paper
scenario.
"""

import numpy as np

from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.experiments.common import FigureResult
from repro.prediction.oracle import OraclePredictor
from repro.routing.optimal import optimal_assignment
from repro.routing.proportional import proportional_assignment
from repro.simulation.scenario import build_paper_scenario


def _ablation() -> FigureResult:
    scenario = build_paper_scenario(num_periods=12, total_peak_rate=800.0, seed=5)
    instance = scenario.instance
    controller = MPCController(
        instance,
        OraclePredictor(scenario.demand),
        OraclePredictor(scenario.prices),
        MPCConfig(window=3),
    )
    result = run_closed_loop(controller, scenario.demand, scenario.prices)

    coeff = instance.demand_coefficients
    latency = scenario.latency.latency_ms
    proportional_ms, optimal_ms = [], []
    for k in range(result.trajectory.num_steps):
        allocation = result.trajectory.states[k]
        demand = scenario.demand[:, k + 1]
        capacity = (allocation * coeff).sum(axis=0)
        servable = np.minimum(demand, capacity)
        sigma_prop = proportional_assignment(allocation, servable, coeff)
        sigma_opt = optimal_assignment(allocation, servable, coeff, latency)
        total = max(servable.sum(), 1e-9)
        proportional_ms.append(float((latency * sigma_prop).sum()) / total)
        optimal_ms.append(sigma_opt.total_weighted_latency / total)

    proportional_ms = np.array(proportional_ms)
    optimal_ms = np.array(optimal_ms)
    premium = (proportional_ms - optimal_ms) / np.maximum(optimal_ms, 1e-9)
    return FigureResult(
        figure="ablation-router",
        title="Proportional (eq. 13) vs optimal demand assignment: mean network latency",
        x_label="period",
        x=np.arange(1, proportional_ms.size + 1),
        series={
            "proportional_mean_ms": proportional_ms,
            "optimal_mean_ms": optimal_ms,
            "latency_premium": premium,
        },
        checks={
            "optimal never worse": bool(np.all(optimal_ms <= proportional_ms + 1e-9)),
            "proportional premium under 60%": bool(np.all(premium < 0.6)),
        },
        notes=f"mean premium {premium.mean() * 100:.1f}% network latency",
    )


def test_ablation_router(run_figure):
    run_figure(_ablation)
