"""Ablation: hedging between a fixed-price and a spot-priced data center.

Section I points at EC2 spot instances as the public-cloud version of
dynamic pricing.  This bench runs the controller over a two-site setting
— one site at a steady (electricity-like) price, one at a spiky spot
price — and checks the economically correct behaviour: ride the cheap
spot floor in calm periods, evacuate toward the fixed-price site when the
spot spikes, and end up cheaper than either single-site policy.
"""

import numpy as np

from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.core.instance import DSPPInstance
from repro.experiments.common import FigureResult
from repro.prediction.oracle import OraclePredictor
from repro.pricing.spot import SpotMarketParams, SpotPriceModel


def _ablation() -> FigureResult:
    rng = np.random.default_rng(11)
    K = 72
    spot_model = SpotPriceModel(
        SpotMarketParams(
            on_demand_price=1.0,
            floor_fraction=0.3,
            spike_probability=0.08,
            spike_multiplier=6.0,
            spike_duration=2.0,
        )
    )
    spot = spot_model.generate(K, rng).prices
    fixed = np.full(K, 1.0)
    prices = np.vstack([fixed, spot])
    demand = np.full((1, K), 200.0)

    instance = DSPPInstance(
        datacenters=("fixed", "spot"),
        locations=("v",),
        sla_coefficients=np.array([[0.1], [0.1]]),
        reconfiguration_weights=np.array([0.02, 0.02]),
        capacities=np.full(2, np.inf),
        initial_state=np.zeros((2, 1)),
    )
    controller = MPCController(
        instance,
        OraclePredictor(demand),
        OraclePredictor(prices),
        MPCConfig(window=4),
    )
    result = run_closed_loop(controller, demand, prices)
    servers = result.servers_per_datacenter()  # (K-1, 2)
    spot_share = servers[:, 1] / np.maximum(servers.sum(axis=1), 1e-9)

    spiking = spot[1:] > 1.0  # spot above the fixed price
    calm = ~spiking
    calm_share = float(spot_share[calm].mean())
    spike_share = float(spot_share[spiking].mean()) if spiking.any() else 0.0

    # Single-site references (20 servers at each site's realized prices).
    servers_needed = 0.1 * 200.0
    all_fixed = float(servers_needed * fixed[1:].sum())
    all_spot = float(servers_needed * spot[1:].sum())

    return FigureResult(
        figure="ablation-spot",
        title="Hedging a fixed-price site against a spiky spot market",
        x_label="period",
        x=np.arange(1, K),
        series={
            "spot_price": spot[1:],
            "spot_share": spot_share,
        },
        checks={
            "rides the spot floor when calm (share > 80%)": calm_share > 0.8,
            "evacuates during spikes (share drops by > 25 pts)": bool(
                calm_share - spike_share > 0.25
            ),
            "beats always-fixed": bool(result.total_cost < all_fixed),
            "beats always-spot": bool(result.total_cost < all_spot),
        },
        notes=(
            f"calm spot share {calm_share:.2f}, spike share {spike_share:.2f}; "
            f"cost {result.total_cost:.0f} vs fixed-only {all_fixed:.0f} / "
            f"spot-only {all_spot:.0f}"
        ),
    )


def test_ablation_spot(run_figure):
    run_figure(_ablation)
