"""Figure 10 bench: long horizons help under constant inputs.

Paper shape: with constant demand and price ("easy to predict"), solution
cost improves monotonically with the prediction-horizon length.
"""

from repro.experiments.fig10_horizon_cost_constant import run_fig10


def test_fig10_horizon_cost_constant(run_figure):
    result = run_figure(run_fig10)
    costs = result.series["effective_cost"]
    assert costs[-1] < costs[0]
