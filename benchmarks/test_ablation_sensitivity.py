"""Sensitivity ablations: the two knobs the paper leaves untuned.

* **Reconfiguration weight c** — the central trade-off parameter.  As c
  grows, total server movement falls (stability, what the paper buys with
  the quadratic penalty) while allocation cost rises (the fleet reacts
  more slowly to price/demand shifts).
* **Reservation ratio r** (Section IV-B) — as the cushion grows, SLA
  shortfall under imperfect prediction falls monotonically while holding
  cost rises linearly.  The sweep exposes the operating curve an SP would
  actually pick a point on.
"""

import numpy as np

from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.experiments.common import FigureResult, is_mostly_decreasing, is_mostly_increasing
from repro.prediction.naive import SeasonalNaivePredictor
from repro.prediction.oracle import OraclePredictor
from repro.simulation.scenario import build_paper_scenario


def _recon_weight_sweep() -> FigureResult:
    weights = np.array([0.05, 0.2, 0.8, 3.0, 12.0])
    movement, allocation_cost, total_cost = [], [], []
    for weight in weights:
        scenario = build_paper_scenario(
            num_periods=24,
            total_peak_rate=800.0,
            reconfiguration_weight=float(weight),
            seed=13,
        )
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=4),
        )
        result = run_closed_loop(controller, scenario.demand, scenario.prices)
        movement.append(result.trajectory.total_reconfiguration())
        allocation_cost.append(result.costs.allocation_total)
        total_cost.append(result.total_cost)

    movement = np.array(movement)
    allocation_cost = np.array(allocation_cost)
    return FigureResult(
        figure="ablation-recon-weight",
        title="Sensitivity to the reconfiguration weight c",
        x_label="recon_weight",
        x=weights,
        series={
            "total_server_movement": movement,
            "allocation_cost": allocation_cost,
            "total_cost": np.array(total_cost),
        },
        checks={
            "movement falls as c grows": is_mostly_decreasing(movement, tolerance=1e-9),
            "allocation cost rises as c grows": is_mostly_increasing(
                allocation_cost, tolerance=1e-6
            ),
        },
        notes="oracle forecasts isolate the penalty's own effect",
    )


def _reservation_sweep() -> FigureResult:
    ratios = np.array([1.0, 1.1, 1.25, 1.5, 2.0])
    shortfall, holding = [], []
    for ratio in ratios:
        scenario = build_paper_scenario(
            num_periods=24,
            total_peak_rate=800.0,
            reservation_ratio=float(ratio),
            seed=14,
        )
        instance = scenario.instance
        controller = MPCController(
            instance,
            SeasonalNaivePredictor(instance.num_locations, season_length=24),
            SeasonalNaivePredictor(instance.num_datacenters, season_length=24),
            MPCConfig(window=3, slack_penalty=100.0),
        )
        result = run_closed_loop(controller, scenario.demand, scenario.prices)
        # Shortfall against the bare SLA requirement.
        bare_coeff = instance.demand_coefficients * ratio
        served = np.einsum("lv,tlv->tv", bare_coeff, result.trajectory.states)
        realized = scenario.demand[:, 1:].T
        shortfall.append(float(np.maximum(realized - served, 0.0).sum()))
        holding.append(result.costs.allocation_total)

    shortfall = np.array(shortfall)
    holding = np.array(holding)
    return FigureResult(
        figure="ablation-reservation",
        title="Sensitivity to the reservation ratio r (Section IV-B)",
        x_label="reservation_ratio",
        x=ratios,
        series={"bare_sla_shortfall": shortfall, "allocation_cost": holding},
        checks={
            "shortfall falls with the cushion": is_mostly_decreasing(
                shortfall, tolerance=1e-9
            ),
            "holding cost rises with the cushion": is_mostly_increasing(
                holding, tolerance=1e-6
            ),
        },
        notes="seasonal-naive forecasts; same demand realization at every r",
    )


def test_ablation_recon_weight(run_figure):
    run_figure(_recon_weight_sweep)


def test_ablation_reservation(run_figure):
    run_figure(_reservation_sweep)
