"""Ablation: empirical price-of-anarchy bracket across capacity tightness.

Theorem 1 fixes the price of stability at 1; the paper leaves the price
of anarchy to its Definition 3.  This bench explores the equilibrium set
from biased quota starts at several bottleneck sizes and reports the
measured [PoS, PoA] bracket — equilibria stay near-optimal here because
the SPs' utilities are uncoupled (the paper's own argument for Theorem 1),
with inefficiency only entering through the shared constraint.
"""

import numpy as np

from repro.experiments.common import FigureResult
from repro.game.anarchy import explore_equilibria
from repro.game.best_response import BestResponseConfig
from repro.game.players import random_providers


def _ablation() -> FigureResult:
    rng = np.random.default_rng(2)
    latency = rng.uniform(10.0, 60.0, size=(3, 4))
    providers = random_providers(
        3,
        ("dc0", "dc1", "dc2"),
        ("v0", "v1", "v2", "v3"),
        latency,
        4,
        np.random.default_rng(3),
        demand_scale=70.0,
    )
    cheap = []
    for p in providers:
        prices = p.prices.copy()
        prices[0] *= 0.3
        cheap.append(type(p)(p.name, p.instance, p.demand, prices))

    bottlenecks = np.array([40.0, 80.0, 160.0, 1000.0])
    pos_estimates, poa_estimates, verified_counts = [], [], []
    for bottleneck in bottlenecks:
        capacity = np.array([bottleneck, 1200.0, 1200.0])
        report = explore_equilibria(
            cheap,
            capacity,
            num_starts=4,
            rng=np.random.default_rng(int(bottleneck)),
            config=BestResponseConfig(epsilon=1e-4),
            deviation_tolerance=0.05,
        )
        pos_estimates.append(report.price_of_stability_estimate)
        poa_estimates.append(report.price_of_anarchy_estimate)
        verified_counts.append(report.num_verified)

    pos_estimates = np.array(pos_estimates)
    poa_estimates = np.array(poa_estimates)
    return FigureResult(
        figure="ablation-anarchy",
        title="Empirical [PoS, PoA] bracket vs bottleneck capacity",
        x_label="bottleneck_capacity",
        x=bottlenecks,
        series={
            "price_of_stability": pos_estimates,
            "price_of_anarchy": poa_estimates,
            "verified_equilibria": np.array(verified_counts, dtype=float),
        },
        checks={
            "PoS ~ 1 everywhere (Theorem 1)": bool(
                np.all(pos_estimates < 1.1)
            ),
            "PoA >= PoS": bool(np.all(poa_estimates >= pos_estimates - 1e-9)),
            "every setting yielded a verified equilibrium": bool(
                np.all(np.array(verified_counts) >= 1)
            ),
        },
    )


def test_ablation_anarchy(run_figure):
    run_figure(_ablation)
