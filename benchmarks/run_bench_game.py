"""Best-response game benchmark: serial vs provider-sharded pool.

Times Algorithm 2 (iterative best response with dual quota coordination)
and the closed-loop W-MPC game at paper / xlarge / continental scale,
across N ∈ {2, 4, 8} providers:

* **serial cold** — the seed behaviour: every coordination round solves
  every provider's sub-problem from scratch, one after the other
  (``reuse_workspaces=False``, no pool — exactly what
  ``compute_equilibrium`` defaulted to and ``run_mpc_game`` always did
  before the pool existed);
* **serial warm** — the inline pool at ``jobs=1``: one persistent
  :class:`repro.core.dspp.DSPPWorkspace` per provider, so every round
  after the first is a vector-only quota swap against a cached
  factorization;
* **sharded** — the same warm path fanned across ``jobs=N`` worker
  processes with provider-affine shards (``provider_index % jobs``),
  instances shipped once, only quota rows and dual reports crossing the
  process boundary per round.

The serial-cold baseline is what this PR replaces, so ``speedup`` is
reported against it; ``speedup_vs_warm_serial`` isolates the
process-parallelism contribution alone.  On a single-core container
(``cpus: 1`` in the output) that second figure hovers around 1.0 by
construction — the workers time-slice one core — and the headline win is
the warm-workspace reuse the pool keeps resident; on multi-core hosts
the two multiply.

Correctness columns: ``solutions_match`` certifies cold-vs-warm
equilibrium-cost agreement (two eps-optimal solves of the same rounds),
and ``bitwise_identical`` certifies that every tested ``jobs`` count
reproduces the ``jobs=1`` equilibrium *bitwise* — quotas, per-provider
costs and full solution trajectories.

Writes ``BENCH_game.json`` at the repo root (override with ``--out``).

Usage::

    PYTHONPATH=src python benchmarks/run_bench_game.py            # full
    PYTHONPATH=src python benchmarks/run_bench_game.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.instance import DSPPInstance
from repro.game.best_response import BestResponseConfig, compute_equilibrium
from repro.game.mpc_game import MPCGameConfig, run_mpc_game
from repro.game.players import ServiceProvider
from repro.solvers.qp import QPSettings

__all__ = ["main"]

# (L, V, W): data centers, locations, game horizon.  Mirrors the solver
# benchmark's scale ladder (benchmarks/run_bench.py) minus the scales the
# game never runs at.
SCALES: dict[str, tuple[int, int, int]] = {
    "paper": (4, 24, 6),
    "xlarge": (8, 64, 12),
    "continental": (32, 512, 24),
}

# Fraction of (l, v) pairs with a finite SLA coefficient (continental
# deployments are sparse by construction).
SCALE_DENSITY: dict[str, float] = {
    "paper": 1.0,
    "xlarge": 0.25,
    "continental": 0.06,
}

# Per-scale coordination rounds (fixed, so every variant runs the same
# solve sequence and per-round times are directly comparable).
SCALE_ROUNDS: dict[str, int] = {"paper": 4, "xlarge": 3, "continental": 2}

# Provider counts per scale.  Continental sub-problems are seconds each,
# so the population stays small there.
SCALE_PLAYERS: dict[str, tuple[int, ...]] = {
    "paper": (2, 4, 8),
    "xlarge": (2, 4, 8),
    "continental": (2,),
}

# Scale-appropriate solver settings, pinned explicitly so the cold and
# warm paths solve with identical settings (solve_dspp and DSPPWorkspace
# have different *defaults*).  The sparse scales ride the sparsified
# matrix-free Krylov backend, same as the solver benchmark's candidates.
SCALE_SETTINGS: dict[str, QPSettings] = {
    "paper": QPSettings(early_polish=True),
    "xlarge": QPSettings(early_polish=True, kkt_backend="krylov", sparsify_columns="on"),
    "continental": QPSettings(
        early_polish=True, kkt_backend="krylov", sparsify_columns="on"
    ),
}

# Scales where the cold (factorize-everything-every-round) baseline is
# impractically slow; their cold columns stay null.
_SKIP_COLD = frozenset({"continental"})

# jobs counts exercised for the bitwise-identity certificate at each N.
def _jobs_grid(num_providers: int) -> tuple[int, ...]:
    return tuple(j for j in (2, 4, 8) if j <= num_providers)


def _game_instance(L: int, V: int, seed: int, usable_density: float) -> DSPPInstance:
    rng = np.random.default_rng(seed)
    sla = rng.uniform(0.05, 0.2, size=(L, V))
    if usable_density < 1.0:
        pruned = rng.random(size=(L, V)) >= usable_density
        for v in range(V):
            if pruned[:, v].all():
                pruned[int(rng.integers(0, L)), v] = False
        sla = np.where(pruned, np.inf, sla)
    return DSPPInstance(
        datacenters=tuple(f"d{i}" for i in range(L)),
        locations=tuple(f"v{i}" for i in range(V)),
        sla_coefficients=sla,
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=L),
        capacities=np.full(L, 1e6),
        initial_state=np.zeros((L, V)),
    )


def _providers(
    scale: str, num_providers: int, seed: int
) -> tuple[list[ServiceProvider], np.ndarray]:
    """A competing population plus a physical capacity that makes the
    quota negotiation bind.

    Capacity is ~25% above aggregate peak demand: enough headroom that
    the elastic slack stays out of play (badly oversubscribed instances
    drive the ADMM toward its iteration cap), but tight enough that the
    equal-split quotas pinch heterogeneous providers and the reported
    duals stay active.
    """
    L, V, W = SCALES[scale]
    providers: list[ServiceProvider] = []
    for i in range(num_providers):
        rng = np.random.default_rng([seed, i])
        instance = _game_instance(L, V, seed * 1000 + i, SCALE_DENSITY[scale])
        hours = np.arange(W, dtype=float)
        diurnal = 1.0 + 0.4 * np.sin(2.0 * np.pi * (hours + 3.0 * i) / 24.0)
        demand = 30.0 * diurnal[None, :] * rng.uniform(0.8, 1.2, size=(V, 1))
        demand = np.maximum(demand + rng.normal(scale=1.0, size=(V, W)), 1.0)
        prices = rng.uniform(0.5, 2.0, size=(L, 1)) * diurnal[None, :]
        prices = np.maximum(prices + rng.normal(scale=0.05, size=(L, W)), 0.05)
        providers.append(
            ServiceProvider(
                name=f"sp{i}", instance=instance, demand=demand, prices=prices
            )
        )
    peak = sum(float(p.servers_demanded().max()) for p in providers)
    capacity = np.full(L, 1.25 * peak / L)
    return providers, capacity


def _equilibrium_config(scale: str, rounds: int, reuse: bool) -> BestResponseConfig:
    # epsilon is effectively unreachable, so every variant runs exactly
    # ``rounds`` rounds — identical solve sequences, comparable times.
    return BestResponseConfig(
        epsilon=1e-12,
        max_iterations=rounds,
        qp_settings=SCALE_SETTINGS[scale],
        reuse_workspaces=reuse,
    )


def _bitwise_equal(a, b) -> bool:
    if a.total_cost != b.total_cost or a.iterations != b.iterations:
        return False
    if not np.array_equal(a.provider_costs, b.provider_costs):
        return False
    if not np.array_equal(a.quotas, b.quotas):
        return False
    return all(
        np.array_equal(sa.trajectory.states, sb.trajectory.states)
        and np.array_equal(sa.capacity_duals, sb.capacity_duals)
        for sa, sb in zip(a.solutions, b.solutions)
    )


def bench_equilibrium(scale: str, num_providers: int, seed: int = 0) -> dict[str, object]:
    """Serial-cold vs serial-warm vs sharded Algorithm 2 at one (scale, N)."""
    rounds = SCALE_ROUNDS[scale]
    providers, capacity = _providers(scale, num_providers, seed)
    jobs_grid = _jobs_grid(num_providers)

    cold_ms: float | None = None
    cold_cost: float | None = None
    if scale not in _SKIP_COLD:
        start = time.perf_counter()
        cold = compute_equilibrium(
            providers, capacity, _equilibrium_config(scale, rounds, reuse=False)
        )
        cold_ms = 1e3 * (time.perf_counter() - start) / rounds
        cold_cost = cold.total_cost

    warm_config = _equilibrium_config(scale, rounds, reuse=True)
    start = time.perf_counter()
    warm = compute_equilibrium(providers, capacity, warm_config, jobs=1)
    warm_ms = 1e3 * (time.perf_counter() - start) / rounds

    sharded_ms: float | None = None
    bitwise = True
    for jobs in jobs_grid:
        start = time.perf_counter()
        sharded = compute_equilibrium(providers, capacity, warm_config, jobs=jobs)
        elapsed_ms = 1e3 * (time.perf_counter() - start) / rounds
        if jobs == max(jobs_grid, default=1):
            sharded_ms = elapsed_ms
        bitwise = bitwise and _bitwise_equal(warm, sharded)

    cost_rel_diff: float | None = None
    if cold_cost is not None:
        cost_rel_diff = abs(warm.total_cost - cold_cost) / max(abs(cold_cost), 1e-12)
    timed = sharded_ms if sharded_ms is not None else warm_ms
    return {
        "num_providers": num_providers,
        "rounds": rounds,
        "jobs": max(jobs_grid, default=1),
        "jobs_tested": list(jobs_grid),
        "serial_cold_round_ms": None if cold_ms is None else round(cold_ms, 2),
        "serial_warm_round_ms": round(warm_ms, 2),
        "sharded_round_ms": None if sharded_ms is None else round(sharded_ms, 2),
        "speedup": None if cold_ms is None else round(cold_ms / timed, 2),
        "speedup_vs_warm_serial": (
            None if sharded_ms is None else round(warm_ms / sharded_ms, 2)
        ),
        "equilibrium_cost_rel_diff": cost_rel_diff,
        "solutions_match": None if cost_rel_diff is None else bool(cost_rel_diff <= 1e-4),
        "bitwise_identical": bool(bitwise),
    }


def bench_mpc_game(
    scale: str, num_providers: int, num_steps: int, seed: int = 0
) -> dict[str, object]:
    """Serial-cold vs pooled closed-loop game over a short horizon.

    The pre-pool ``run_mpc_game`` solved every round of every period cold;
    the pooled loop keeps one warm workspace per provider alive across the
    whole horizon.
    """
    L, V, W = SCALES[scale]
    rounds = 2
    providers, capacity = _providers(scale, num_providers, seed)
    # A closed loop needs a horizon longer than the planning window; reuse
    # the same population but extend the trajectories by tiling.
    horizon = num_steps + 1
    extended = []
    for p in providers:
        reps = int(np.ceil(horizon / p.demand.shape[1]))
        extended.append(
            ServiceProvider(
                name=p.name,
                instance=p.instance,
                demand=np.tile(p.demand, (1, reps))[:, :horizon],
                prices=np.tile(p.prices, (1, reps))[:, :horizon],
            )
        )
    config = MPCGameConfig(
        window=min(3, W),
        coordination_rounds=rounds,
        qp_settings=SCALE_SETTINGS[scale],
        reuse_workspaces=False,
    )
    start = time.perf_counter()
    cold = run_mpc_game(extended, capacity, config, jobs=1)
    cold_ms = 1e3 * (time.perf_counter() - start) / num_steps

    warm_config = MPCGameConfig(
        window=min(3, W),
        coordination_rounds=rounds,
        qp_settings=SCALE_SETTINGS[scale],
        reuse_workspaces=True,
    )
    start = time.perf_counter()
    warm = run_mpc_game(extended, capacity, warm_config, jobs=1)
    warm_serial_ms = 1e3 * (time.perf_counter() - start) / num_steps

    start = time.perf_counter()
    pooled = run_mpc_game(extended, capacity, warm_config, jobs=num_providers)
    pooled_ms = 1e3 * (time.perf_counter() - start) / num_steps

    bitwise = warm.total_cost == pooled.total_cost and all(
        np.array_equal(pa.quotas, pb.quotas) and np.array_equal(pa.states, pb.states)
        for pa, pb in zip(warm.periods, pooled.periods)
    )
    cost_rel_diff = abs(warm.total_cost - cold.total_cost) / max(
        abs(cold.total_cost), 1e-12
    )
    return {
        "num_providers": num_providers,
        "num_steps": num_steps,
        "coordination_rounds": rounds,
        "jobs": num_providers,
        "serial_cold_period_ms": round(cold_ms, 2),
        "serial_warm_period_ms": round(warm_serial_ms, 2),
        "sharded_period_ms": round(pooled_ms, 2),
        "speedup": round(cold_ms / pooled_ms, 2),
        "realized_cost_rel_diff": cost_rel_diff,
        "solutions_match": bool(cost_rel_diff <= 1e-4),
        "bitwise_identical": bool(bitwise),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: paper scale only, fewer runs"
    )
    parser.add_argument("--out", default=None, help="output path (default: repo root)")
    args = parser.parse_args(argv)
    out = (
        Path(args.out)
        if args.out is not None
        else Path(__file__).resolve().parent.parent / "BENCH_game.json"
    )

    scales = ["paper"] if args.quick else list(SCALES)
    results: dict[str, object] = {
        "benchmark": "provider-sharded best-response pool vs serial game",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "note": (
            "serial_cold is the pre-pool behaviour (every round re-solves "
            "from scratch); on a 1-cpu host sharded workers time-slice one "
            "core, so speedup comes from the pool's resident warm "
            "workspaces and speedup_vs_warm_serial ~ 1.0"
        ),
        "equilibrium": {},
        "mpc_game": {},
    }

    ok = True
    for scale in scales:
        L, V, W = SCALES[scale]
        players = SCALE_PLAYERS[scale]
        if args.quick:
            players = tuple(n for n in players if n <= 4)
        entries = []
        for n in players:
            print(f"== equilibrium {scale} (L={L} V={V} W={W}) N={n}")
            entry = bench_equilibrium(scale, n)
            entries.append(entry)
            print(
                f"   cold {entry['serial_cold_round_ms']} ms/round, "
                f"warm {entry['serial_warm_round_ms']} ms/round, "
                f"sharded(jobs={entry['jobs']}) {entry['sharded_round_ms']} "
                f"ms/round, speedup {entry['speedup']}x, "
                f"match={entry['solutions_match']}, "
                f"bitwise={entry['bitwise_identical']}"
            )
            ok = ok and bool(entry["bitwise_identical"])
            if entry["solutions_match"] is not None:
                ok = ok and bool(entry["solutions_match"])
        results["equilibrium"][scale] = {  # type: ignore[index]
            "L": L,
            "V": V,
            "window": W,
            "usable_density": SCALE_DENSITY[scale],
            "runs": entries,
        }

    mpc_scales = ["paper"] if args.quick else ["paper", "xlarge"]
    for scale in mpc_scales:
        num_steps = 3 if args.quick else 4
        print(f"== mpc game {scale} N=4 ({num_steps} periods)")
        entry = bench_mpc_game(scale, num_providers=4, num_steps=num_steps)
        results["mpc_game"][scale] = entry  # type: ignore[index]
        print(
            f"   cold {entry['serial_cold_period_ms']} ms/period, "
            f"sharded {entry['sharded_period_ms']} ms/period, "
            f"speedup {entry['speedup']}x, match={entry['solutions_match']}, "
            f"bitwise={entry['bitwise_identical']}"
        )
        ok = ok and bool(entry["solutions_match"]) and bool(entry["bitwise_identical"])

    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")

    # Acceptance gate: the 8-provider xlarge game must beat the serial
    # cold baseline by >= 2.5x through the sharded path.
    if not args.quick:
        xlarge_runs = results["equilibrium"]["xlarge"]["runs"]  # type: ignore[index]
        gate = next(r for r in xlarge_runs if r["num_providers"] == 8)
        print(
            f"xlarge N=8 gate: speedup {gate['speedup']}x "
            f"(need >= 2.5), bitwise={gate['bitwise_identical']}"
        )
        ok = ok and gate["speedup"] is not None and gate["speedup"] >= 2.5
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
