"""Ablation: quadratic (paper, eq. 4) vs absolute-value reconfiguration
penalty.

DESIGN.md §5: under small price wiggles the L1 controller exhibits a
dead-band (no migration unless the price spread repays the move cost in
full), while the quadratic controller always migrates a little — the
smooth damping the paper argues keeps the system stable.  Both are solved
to optimality over the same horizon.
"""

import numpy as np

from repro.core.absolute import solve_dspp_l1
from repro.core.dspp import solve_dspp
from repro.core.instance import DSPPInstance
from repro.experiments.common import FigureResult


def _ablation() -> FigureResult:
    # Two symmetric DCs; DC a's price steps up by the swept spread for the
    # second half of the horizon (a sustained shift, as in Figure 3's
    # afternoon peak — fast wiggles never repay a fixed move cost).
    # Initial allocation all at DC a.  Moving one server costs 2c = 4;
    # holding it at b saves `spread` per remaining period (5 periods), so
    # the L1 dead-band ends at spread = 0.8.
    T = 10
    spreads = np.linspace(0.0, 1.8, 7)
    l1_moves, quad_moves = [], []
    for spread in spreads:
        instance = DSPPInstance(
            datacenters=("a", "b"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.1]]),
            reconfiguration_weights=np.array([2.0, 2.0]),
            capacities=np.full(2, np.inf),
            initial_state=np.array([[10.0], [0.0]]),
        )
        demand = np.full((1, T), 100.0)
        price_a = np.concatenate([np.ones(T // 2), np.full(T - T // 2, 1.0 + spread)])
        prices = np.vstack([price_a, np.ones(T)])
        l1 = solve_dspp_l1(instance, demand, prices)
        quadratic = solve_dspp(instance, demand, prices)
        l1_moves.append(float(np.abs(l1.trajectory.controls).sum()))
        quad_moves.append(float(np.abs(quadratic.trajectory.controls).sum()))

    l1_moves = np.array(l1_moves)
    quad_moves = np.array(quad_moves)
    return FigureResult(
        figure="ablation-recon-penalty",
        title="Total server movement vs sustained price spread: |u| (L1) vs u^2 (paper)",
        x_label="price_spread",
        x=spreads,
        series={"l1_total_moves": l1_moves, "quadratic_total_moves": quad_moves},
        checks={
            "L1 has a dead-band (no movement at small spreads)": bool(
                l1_moves[1] == 0.0  # reprolint: disable=RL004 — exact by construction
            ),
            "quadratic always migrates a little": bool(np.all(quad_moves[1:] > 0)),
            "both migrate under large spreads": bool(
                l1_moves[-1] > 0 and quad_moves[-1] > 0
            ),
        },
        notes="L1 dead-band ends where spread x remaining periods = 2c per server",
    )


def test_ablation_recon_penalty(run_figure):
    run_figure(_ablation)
