"""Ablation: the in-house ADMM QP solver vs scipy SLSQP.

DESIGN.md §5: validates that the operator-splitting solver the whole
library stands on matches a generic NLP solver on DSPP-shaped programs,
and measures the speed gap as instances grow.
"""

import time

import numpy as np
from scipy.optimize import minimize

from repro.core.instance import DSPPInstance
from repro.core.matrices import build_stacked_qp
from repro.experiments.common import FigureResult
from repro.solvers.qp import solve_qp


def _instance(L, V):
    rng = np.random.default_rng(0)
    return DSPPInstance(
        datacenters=tuple(f"d{i}" for i in range(L)),
        locations=tuple(f"v{i}" for i in range(V)),
        sla_coefficients=rng.uniform(0.05, 0.2, size=(L, V)),
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=L),
        capacities=np.full(L, 1e4),
        initial_state=np.zeros((L, V)),
    )


def _ablation() -> FigureResult:
    rng = np.random.default_rng(1)
    sizes = [(2, 2, 3), (2, 4, 4), (3, 6, 5)]
    admm_time, slsqp_time, objective_gap = [], [], []
    for L, V, T in sizes:
        instance = _instance(L, V)
        demand = rng.uniform(10.0, 60.0, size=(V, T))
        prices = rng.uniform(0.5, 2.0, size=(L, T))
        stacked = build_stacked_qp(instance, demand, prices)

        start = time.perf_counter()
        ours = solve_qp(stacked.P, stacked.q, stacked.A, stacked.l, stacked.u)
        admm_time.append(time.perf_counter() - start)
        assert ours.is_optimal

        P = stacked.P.toarray()
        q = stacked.q
        A = stacked.A.toarray()
        finite_l = np.isfinite(stacked.l)
        finite_u = np.isfinite(stacked.u)
        constraints = [
            {"type": "ineq", "fun": lambda x, A=A, u=stacked.u, m=finite_u: (u - A @ x)[m]},
            {"type": "ineq", "fun": lambda x, A=A, l=stacked.l, m=finite_l: (A @ x - l)[m]},
        ]
        start = time.perf_counter()
        reference = minimize(
            lambda x: 0.5 * x @ P @ x + q @ x,
            ours.x,  # fair start: SLSQP from our solution must not improve much
            jac=lambda x: P @ x + q,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 300, "ftol": 1e-10},
        )
        slsqp_time.append(time.perf_counter() - start)
        gap = abs(ours.objective - reference.fun) / max(abs(reference.fun), 1.0)
        objective_gap.append(gap)

    objective_gap = np.array(objective_gap)
    return FigureResult(
        figure="ablation-solver",
        title="ADMM QP solver vs scipy SLSQP on DSPP programs",
        x_label="instance (L*V*T vars x2)",
        x=np.array([L * V * T for L, V, T in sizes]),
        series={
            "admm_seconds": np.array(admm_time),
            "slsqp_seconds": np.array(slsqp_time),
            "relative_objective_gap": objective_gap,
        },
        checks={
            "objectives agree to 0.1%": bool(np.all(objective_gap < 1e-3)),
        },
    )


def test_ablation_solver(run_figure):
    run_figure(_ablation)
