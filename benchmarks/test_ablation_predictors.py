"""Ablation: predictors in the closed loop (extends Figures 9/10).

DESIGN.md §5: same scenario, same controller, four forecasters — perfect
information, seasonal-naive, AR(2) and last-value persistence.  Measures
total cost plus SLA shortfall; the oracle lower-bounds what any predictor
can achieve.
"""

import numpy as np

from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.experiments.common import FigureResult
from repro.prediction.ar import ARPredictor
from repro.prediction.holt_winters import HoltWintersPredictor
from repro.prediction.naive import LastValuePredictor, SeasonalNaivePredictor
from repro.prediction.oracle import OraclePredictor
from repro.simulation.scenario import build_paper_scenario

_PENALTY = 100.0


def _ablation() -> FigureResult:
    scenario = build_paper_scenario(
        num_periods=48, total_peak_rate=800.0, seed=9, reservation_ratio=1.2
    )
    V = scenario.instance.num_locations
    L = scenario.instance.num_datacenters
    predictors = {
        "oracle": lambda: (
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
        ),
        "seasonal": lambda: (
            SeasonalNaivePredictor(V, season_length=24),
            SeasonalNaivePredictor(L, season_length=24),
        ),
        "holt_winters": lambda: (
            HoltWintersPredictor(V, season_length=24),
            HoltWintersPredictor(L, season_length=24),
        ),
        "ar2": lambda: (ARPredictor(V, order=2), ARPredictor(L, order=2)),
        "last_value": lambda: (LastValuePredictor(V), LastValuePredictor(L)),
    }

    names, effective, shortfall = [], [], []
    for name, build in predictors.items():
        demand_predictor, price_predictor = build()
        controller = MPCController(
            scenario.instance,
            demand_predictor,
            price_predictor,
            MPCConfig(window=3, slack_penalty=_PENALTY),
        )
        result = run_closed_loop(controller, scenario.demand, scenario.prices)
        names.append(name)
        effective.append(result.total_cost + _PENALTY * result.total_unmet_demand)
        shortfall.append(result.total_unmet_demand)

    effective = np.array(effective)
    shortfall = np.array(shortfall)
    by_name = dict(zip(names, effective))
    return FigureResult(
        figure="ablation-predictors",
        title="Closed-loop cost by prediction model (48h paper scenario)",
        x_label="predictor",
        x=np.array(names),
        series={"effective_cost": effective, "unmet_demand": shortfall},
        checks={
            "oracle is cheapest": bool(by_name["oracle"] == effective.min()),
            "seasonal beats last-value once trained": bool(
                by_name["seasonal"] < by_name["last_value"]
            ),
        },
        notes="cost includes the SLA-shortfall penalty "
        f"({_PENALTY}/request-period)",
    )


def test_ablation_predictors(run_figure):
    run_figure(_ablation)
