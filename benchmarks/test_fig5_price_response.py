"""Figure 5 bench: price-driven migration under constant demand.

Paper shape: "the electricity price is generally higher in Mountain View
than in Houston; the difference reaches its maximum around 5pm.
Consequently, our controller allocates less [servers] in the Mountain View
data center in the afternoon."
"""

from repro.experiments.fig5_price_response import run_fig5


def test_fig5_price_response(run_figure):
    result = run_figure(run_fig5)
    # All three DCs participate at some point of the day.
    for key in ("mountain_view_ca", "houston_tx", "atlanta_ga"):
        assert result.series[f"servers_{key}"].max() > 0
