"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark runs its figure harness exactly once (rounds=1 — these are
simulation sweeps, not microbenchmarks), prints the same rows the paper's
figure plots, and asserts the figure's qualitative shape checks.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import FigureResult, format_figure


@pytest.fixture
def run_figure(benchmark, capsys):
    """Run a figure harness once under pytest-benchmark and report it."""

    def _run(fn, *args, **kwargs) -> FigureResult:
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(format_figure(result))
        assert result.all_checks_pass, (
            f"{result.figure} shape checks failed: {result.failed_checks()}"
        )
        return result

    return _run
