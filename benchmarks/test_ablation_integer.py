"""Ablation: integer server counts (the paper's future-work item).

Section IV argues the continuous relaxation is harmless for services
needing "tens or hundreds of servers"; Section VIII flags small data
centers as the case where integrality bites.  This ablation measures the
rounding integrality gap as the service scales from a handful of servers
to hundreds — the gap should shrink roughly like 1/scale, vindicating the
relaxation exactly where the paper claims it holds.
"""

import numpy as np

from repro.core.instance import DSPPInstance
from repro.core.integer import solve_dspp_integer
from repro.experiments.common import FigureResult, is_mostly_decreasing


def _ablation() -> FigureResult:
    rng = np.random.default_rng(3)
    L, V, T = 2, 3, 4
    base_demand = rng.uniform(5.0, 12.0, size=(V, T))
    prices = rng.uniform(0.8, 1.6, size=(L, T))
    instance = DSPPInstance(
        datacenters=("d0", "d1"),
        locations=("v0", "v1", "v2"),
        sla_coefficients=rng.uniform(0.05, 0.15, size=(L, V)),
        reconfiguration_weights=np.ones(L),
        capacities=np.full(L, np.inf),
        initial_state=np.zeros((L, V)),
    )

    scales = np.array([1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0])
    gaps, server_counts = [], []
    for scale in scales:
        solution = solve_dspp_integer(instance, base_demand * scale, prices)
        gaps.append(solution.integrality_gap)
        server_counts.append(float(solution.trajectory.states[-1].sum()))

    gaps = np.array(gaps)
    return FigureResult(
        figure="ablation-integer",
        title="Integrality gap of rounded allocations vs service scale",
        x_label="demand_scale",
        x=scales,
        series={
            "integrality_gap": gaps,
            "total_servers": np.array(server_counts),
        },
        checks={
            "gap shrinks with scale": is_mostly_decreasing(gaps, tolerance=1e-4),
            "gap under 5% at hundreds of servers": bool(gaps[-1] < 0.05),
        },
        notes="gap is vs the continuous lower bound, so it upper-bounds "
        "the true MIQP gap",
    )


def test_ablation_integer(run_figure):
    run_figure(_ablation)
