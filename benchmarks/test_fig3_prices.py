"""Figure 3 bench: regional electricity price traces over one day.

Paper shape: four regional traces between ~$10 and ~$90/MWh; California
most expensive on average with the CA-TX gap peaking in the late
afternoon; the traces cross during the day.
"""

from repro.experiments.fig3_prices import run_fig3


def test_fig3_prices(run_figure):
    result = run_figure(run_fig3, num_hours=24, seed=0)
    assert len(result.series) == 4
