"""Ablation: static full-horizon equilibrium vs the closed-loop W-MPC game.

The static Algorithm 2 fixed point (everything negotiated up front) is
the idealized benchmark; the closed-loop game renegotiates quotas with
only a few message rounds per period, which is what a deployment can
afford.  This bench measures how much total cost the per-period
renegotiation leaves on the table, as a function of the coordination
budget — and confirms capacity is never violated either way.
"""

import numpy as np

from repro.experiments.common import FigureResult
from repro.game.best_response import BestResponseConfig, compute_equilibrium
from repro.game.mpc_game import MPCGameConfig, run_mpc_game
from repro.game.players import random_providers


def _population(seed=0):
    rng = np.random.default_rng(seed)
    latency = rng.uniform(10.0, 60.0, size=(3, 4))
    providers = random_providers(
        4,
        ("dc0", "dc1", "dc2"),
        ("v0", "v1", "v2", "v3"),
        latency,
        8,
        np.random.default_rng(seed + 1),
        demand_scale=90.0,
    )
    cheap = []
    for p in providers:
        prices = p.prices.copy()
        prices[0] *= 0.3
        cheap.append(type(p)(p.name, p.instance, p.demand, prices))
    return cheap


def _ablation() -> FigureResult:
    providers = _population()
    capacity = np.array([80.0, 1500.0, 1500.0])
    penalty = 1e3

    static = compute_equilibrium(
        providers, capacity, BestResponseConfig(epsilon=1e-4, slack_penalty=penalty)
    )
    static_effective = static.total_cost

    rounds_axis = np.array([1, 2, 4, 8])
    closed_costs = []
    violations = []
    for rounds in rounds_axis:
        result = run_mpc_game(
            providers,
            capacity,
            MPCGameConfig(window=3, coordination_rounds=int(rounds), slack_penalty=penalty),
        )
        closed_costs.append(result.total_cost + penalty * result.total_shortfall)
        violations.append(result.capacity_violation)

    closed_costs = np.array(closed_costs)
    violations = np.array(violations)
    ratio = closed_costs / static_effective
    return FigureResult(
        figure="ablation-game-dynamics",
        title="Closed-loop W-MPC game vs static full-horizon equilibrium",
        x_label="coordination_rounds_per_period",
        x=rounds_axis,
        series={
            "closed_loop_cost": closed_costs,
            "cost_vs_static_equilibrium": ratio,
            "capacity_violation": violations,
        },
        checks={
            "capacity never violated": bool(np.all(violations <= 1e-6)),
            "more rounds never much worse": bool(
                ratio[-1] <= ratio[0] * 1.05
            ),
            "closed loop within 2x of the static ideal": bool(
                np.all(ratio < 2.0)
            ),
        },
        notes=f"static full-horizon equilibrium cost {static_effective:.1f} "
        f"({static.iterations} rounds to converge)",
    )


def test_ablation_game_dynamics(run_figure):
    run_figure(_ablation)
