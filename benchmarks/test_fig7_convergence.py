"""Figure 7 bench: best-response convergence vs number of players.

Paper shape: with the cheapest data center's capacity set to 100 / 200 /
300 servers, "the number of iterations to obtain a stable outcome grows
with number of players and the tightness of data center capacity
constraints".

This is the heaviest bench (hundreds of equilibrium computations); the
player count is trimmed to 8 to keep it in tens of seconds while
preserving both trends.
"""

from repro.experiments.fig7_convergence import PAPER_BOTTLENECKS, run_fig7


def test_fig7_convergence(run_figure):
    result = run_figure(run_fig7, max_players=8, bottlenecks=PAPER_BOTTLENECKS)
    assert set(result.series) == {"capacity_100", "capacity_200", "capacity_300"}
