"""Figure 6 bench: longer prediction horizons damp server-count swings.

Paper shape: over K in {1, 10, 20, 30}, "the change in the number of
servers tends to be less as K increases" — per-step change magnitude
(RMS and peak) shrinks with the horizon, and total cost improves.
"""

from repro.experiments.fig6_horizon_smoothing import PAPER_HORIZONS, run_fig6


def test_fig6_horizon_smoothing(run_figure):
    result = run_figure(run_fig6, horizons=PAPER_HORIZONS)
    assert result.x.tolist() == list(PAPER_HORIZONS)
