"""Tests for the pricing package (markets, electricity, traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pricing.electricity import (
    ElectricityPriceModel,
    PriceTrace,
    constant_price_trace,
    generate_price_traces,
)
from repro.pricing.markets import (
    REGIONS,
    VM_TYPES,
    Region,
    price_per_server_hour,
    region_for_datacenter,
)
from repro.pricing.traces import load_price_csv, resample_trace, save_price_csv


class TestRegions:
    def test_paper_datacenters_mapped(self):
        for key in ("san_jose_ca", "houston_tx", "dallas_tx", "atlanta_ga", "chicago_il"):
            assert region_for_datacenter(key).code in REGIONS

    def test_mountain_view_and_san_jose_share_market(self):
        assert (
            region_for_datacenter("mountain_view_ca").code
            == region_for_datacenter("san_jose_ca").code
        )

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            region_for_datacenter("paris_fr")

    def test_california_most_expensive_mean(self):
        caiso = REGIONS["CAISO"].mean_price_mwh
        assert all(r.mean_price_mwh <= caiso for r in REGIONS.values())

    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region("X", "X", 0.0, 17.0, 1.0, 1.0, -8)
        with pytest.raises(ValueError):
            Region("X", "X", 10.0, 17.0, -1.0, 1.0, -8)


class TestVMTypes:
    def test_paper_power_ratings(self):
        assert VM_TYPES["small"].power_watts == 30.0
        assert VM_TYPES["medium"].power_watts == 70.0
        assert VM_TYPES["large"].power_watts == 140.0

    def test_price_conversion(self):
        # 50 $/MWh * 140 W * PUE 1.2 = 50 * 140e-6 * 1.2 = 0.0084 $/h
        price = price_per_server_hour(50.0, VM_TYPES["large"], pue=1.2)
        assert price == pytest.approx(0.0084)

    def test_conversion_validation(self):
        with pytest.raises(ValueError):
            price_per_server_hour(-1.0, VM_TYPES["small"])
        with pytest.raises(ValueError):
            price_per_server_hour(10.0, VM_TYPES["small"], pue=0.9)


class TestPriceTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            PriceTrace("x", np.array([[1.0]]))
        with pytest.raises(ValueError):
            PriceTrace("x", np.array([-1.0]))
        with pytest.raises(ValueError):
            PriceTrace("x", np.array([1.0]), period_hours=0.0)

    def test_scaled(self):
        trace = PriceTrace("x", np.array([2.0, 4.0]))
        assert trace.scaled(0.5).prices == pytest.approx([1.0, 2.0])
        with pytest.raises(ValueError):
            trace.scaled(-1.0)


class TestElectricityModel:
    def test_expected_price_peaks_at_local_peak_hour(self):
        region = REGIONS["CAISO"]
        model = ElectricityPriceModel(region)
        hours = np.arange(0, 24, 0.25)
        expected = model.expected_price(hours)
        peak_utc = float(hours[int(np.argmax(expected))])
        local = (peak_utc + region.utc_offset_hours) % 24
        assert local == pytest.approx(region.peak_hour_local, abs=0.5)

    def test_generation_respects_floor(self, rng):
        model = ElectricityPriceModel(REGIONS["ERCOT"])
        trace = model.generate(24 * 14, rng)
        assert trace.prices.min() >= 5.0

    def test_generation_deterministic_given_rng(self):
        model = ElectricityPriceModel(REGIONS["MISO"])
        a = model.generate(24, np.random.default_rng(5))
        b = model.generate(24, np.random.default_rng(5))
        assert a.prices == pytest.approx(b.prices)

    def test_long_run_mean_near_region_mean(self, rng):
        region = REGIONS["SERC"]
        trace = ElectricityPriceModel(region).generate(24 * 60, rng)
        assert trace.prices.mean() == pytest.approx(region.mean_price_mwh, rel=0.1)

    def test_invalid_ar_coefficient(self):
        with pytest.raises(ValueError):
            ElectricityPriceModel(REGIONS["CAISO"], ar_coefficient=1.0)

    def test_invalid_length(self, rng):
        with pytest.raises(ValueError):
            ElectricityPriceModel(REGIONS["CAISO"]).generate(0, rng)

    def test_generate_traces_shares_by_region_code(self, rng):
        traces = generate_price_traces(
            [REGIONS["CAISO"], REGIONS["CAISO"], REGIONS["ERCOT"]], 24, rng
        )
        assert set(traces) == {"CAISO", "ERCOT"}


class TestConstantTrace:
    def test_values(self):
        trace = constant_price_trace("flat", 3.0, 5)
        assert trace.prices == pytest.approx(np.full(5, 3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_price_trace("flat", -1.0, 5)
        with pytest.raises(ValueError):
            constant_price_trace("flat", 1.0, 0)


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path, rng):
        traces = {
            "a": PriceTrace("a", rng.uniform(10, 90, 24)),
            "b": PriceTrace("b", rng.uniform(10, 90, 24)),
        }
        path = tmp_path / "prices.csv"
        save_price_csv(path, traces)
        loaded = load_price_csv(path)
        assert set(loaded) == {"a", "b"}
        assert loaded["a"].prices == pytest.approx(traces["a"].prices)

    def test_save_rejects_mismatched_lengths(self, tmp_path):
        traces = {
            "a": PriceTrace("a", np.ones(3)),
            "b": PriceTrace("b", np.ones(4)),
        }
        with pytest.raises(ValueError, match="inconsistent"):
            save_price_csv(tmp_path / "x.csv", traces)

    def test_save_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            save_price_csv(tmp_path / "x.csv", {})

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,a\n0,1\n")
        with pytest.raises(ValueError, match="header"):
            load_price_csv(path)

    def test_load_rejects_bad_cell(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("hour,a\n0,notaprice\n")
        with pytest.raises(ValueError, match="bad price"):
            load_price_csv(path)

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_price_csv(path)

    def test_load_rejects_no_rows(self, tmp_path):
        path = tmp_path / "norows.csv"
        path.write_text("hour,a\n")
        with pytest.raises(ValueError, match="no data"):
            load_price_csv(path)


class TestResample:
    def test_mean_downsampling(self):
        trace = PriceTrace("x", np.array([1.0, 3.0, 5.0, 7.0]), period_hours=1.0)
        out = resample_trace(trace, 2, how="mean")
        assert out.prices == pytest.approx([2.0, 6.0])
        assert out.period_hours == 2.0

    def test_max_and_first(self):
        trace = PriceTrace("x", np.array([1.0, 3.0, 5.0, 7.0]))
        assert resample_trace(trace, 2, how="max").prices == pytest.approx([3.0, 7.0])
        assert resample_trace(trace, 2, how="first").prices == pytest.approx([1.0, 5.0])

    def test_rejects_nondivisible(self):
        trace = PriceTrace("x", np.ones(5))
        with pytest.raises(ValueError, match="divisible"):
            resample_trace(trace, 2)

    def test_rejects_unknown_aggregation(self):
        trace = PriceTrace("x", np.ones(4))
        with pytest.raises(ValueError, match="unknown"):
            resample_trace(trace, 2, how="median")
