"""Tests for repro.topology.bipartite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.topology.bipartite import BipartiteLatency, extract_bipartite_latency


@pytest.fixture
def line_graph():
    """a --1ms-- b --2ms-- c --4ms-- d"""
    graph = nx.Graph()
    graph.add_edge("a", "b", latency_ms=1.0)
    graph.add_edge("b", "c", latency_ms=2.0)
    graph.add_edge("c", "d", latency_ms=4.0)
    return graph


class TestExtract:
    def test_shortest_paths(self, line_graph):
        latency = extract_bipartite_latency(
            line_graph, {"dc": "a"}, {"v0": "c", "v1": "d"}
        )
        assert latency.latency("dc", "v0") == pytest.approx(3.0)
        assert latency.latency("dc", "v1") == pytest.approx(7.0)

    def test_unreachable_pair_is_inf(self, line_graph):
        line_graph.add_node("island")
        latency = extract_bipartite_latency(
            line_graph, {"dc": "a"}, {"v": "island"}
        )
        assert latency.latency("dc", "v") == np.inf

    def test_colocated_zero_latency(self, line_graph):
        latency = extract_bipartite_latency(line_graph, {"dc": "b"}, {"v": "b"})
        assert latency.latency("dc", "v") == 0.0

    def test_missing_node_raises(self, line_graph):
        with pytest.raises(KeyError, match="nowhere"):
            extract_bipartite_latency(line_graph, {"dc": "nowhere"}, {"v": "a"})

    def test_ordering_follows_mappings(self, line_graph):
        latency = extract_bipartite_latency(
            line_graph, {"d1": "a", "d0": "b"}, {"x": "c", "w": "d"}
        )
        assert latency.datacenters == ("d1", "d0")
        assert latency.locations == ("x", "w")


class TestBipartiteLatency:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            BipartiteLatency(("a",), ("v",), np.zeros((2, 1)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            BipartiteLatency(("a",), ("v",), np.array([[-1.0]]))

    def test_restrict_subsets_and_reorders(self):
        latency = BipartiteLatency(
            ("d0", "d1", "d2"),
            ("v0", "v1"),
            np.arange(6, dtype=float).reshape(3, 2),
        )
        sub = latency.restrict(datacenters=["d2", "d0"], locations=["v1"])
        assert sub.datacenters == ("d2", "d0")
        assert sub.latency_ms == pytest.approx(np.array([[5.0], [1.0]]))

    def test_restrict_unknown_label_raises(self):
        latency = BipartiteLatency(("d0",), ("v0",), np.zeros((1, 1)))
        with pytest.raises(ValueError):
            latency.restrict(datacenters=["missing"])

    def test_counts(self):
        latency = BipartiteLatency(("d0", "d1"), ("v0",), np.zeros((2, 1)))
        assert latency.num_datacenters == 2
        assert latency.num_locations == 1
