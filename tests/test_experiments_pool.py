"""Tests for the provider-sharded process pool (repro.experiments.pool)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dspp import solve_dspp
from repro.experiments.pool import (
    DeadWorkerError,
    PoolSettings,
    ProviderPool,
    shard_indices,
)
from repro.game.best_response import BestResponseConfig, compute_equilibrium
from repro.game.mpc_game import MPCGameConfig, run_mpc_game
from repro.game.players import random_providers


def _population(num_providers=3, L=2, V=3, horizon=4, seed=11):
    rng = np.random.default_rng(seed)
    providers = random_providers(
        num_providers,
        tuple(f"dc{i}" for i in range(L)),
        tuple(f"v{i}" for i in range(V)),
        rng.uniform(10.0, 60.0, size=(L, V)),
        horizon,
        rng,
        demand_scale=40.0,
    )
    peak = sum(float(p.servers_demanded().max()) for p in providers)
    capacity = np.full(L, 1.2 * peak / L)
    return providers, capacity


class TestShardIndices:
    def test_provider_affine_mapping(self):
        assert shard_indices(5, 2) == [[0, 2, 4], [1, 3]]
        assert shard_indices(3, 3) == [[0], [1], [2]]
        assert shard_indices(2, 1) == [[0, 1]]

    def test_every_provider_owned_exactly_once(self):
        shards = shard_indices(17, 4)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(17))

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="provider"):
            shard_indices(0, 2)
        with pytest.raises(ValueError, match="worker"):
            shard_indices(2, 0)


class TestPoolLifecycle:
    def test_jobs_clamped_to_provider_count(self):
        providers, _ = _population(num_providers=3)
        with ProviderPool(providers, jobs=8) as pool:
            assert pool.num_jobs == 3
            assert pool.num_providers == 3

    def test_default_jobs_is_inline(self):
        providers, _ = _population(num_providers=2)
        pool = ProviderPool(providers)
        try:
            assert pool.num_jobs == 1
        finally:
            pool.close()

    def test_close_is_idempotent_and_poisons_rounds(self):
        providers, capacity = _population(num_providers=2)
        pool = ProviderPool(providers, jobs=2)
        pool.close()
        pool.close()
        quotas = np.tile(capacity / 2, (2, 1))
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_round(quotas)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError, match="provider"):
            ProviderPool([])

    def test_settings_validation(self):
        with pytest.raises(ValueError, match="slack_penalty"):
            PoolSettings(slack_penalty=0.0)

    def test_solutions_before_any_round_raises(self):
        providers, _ = _population(num_providers=2)
        with ProviderPool(providers) as pool:
            with pytest.raises(RuntimeError, match="round"):
                pool.solutions()


class TestRoundProtocol:
    def test_round_shape_validation(self):
        providers, capacity = _population(num_providers=2, L=2)
        with ProviderPool(providers) as pool:
            with pytest.raises(ValueError, match="shape"):
                pool.run_round(np.ones((3, 2)))
            with pytest.raises(ValueError, match="shape"):
                pool.run_round(np.ones((2, 3)))

    def test_set_problems_length_validation(self):
        providers, _ = _population(num_providers=2)
        with ProviderPool(providers) as pool:
            with pytest.raises(ValueError, match="states"):
                pool.set_problems(states=[None])

    def test_worker_errors_propagate_to_coordinator(self):
        """A zero quota makes the shard's with_capacities raise; the pool
        must surface that as the original exception type, not hang."""
        providers, capacity = _population(num_providers=2)
        quotas = np.tile(capacity / 2, (2, 1))
        quotas[1, 0] = 0.0
        for jobs in (1, 2):
            with ProviderPool(providers, jobs=jobs) as pool:
                with pytest.raises(ValueError, match="capacit"):
                    pool.run_round(quotas)

    def test_round_reports_match_direct_solves(self):
        providers, capacity = _population(num_providers=3)
        quotas = np.tile(capacity / 3, (3, 1))
        settings = PoolSettings(reuse_workspaces=False)
        with ProviderPool(providers, jobs=2, settings=settings) as pool:
            result = pool.run_round(quotas)
            controls = pool.first_controls()
        for i, provider in enumerate(providers):
            direct = solve_dspp(
                provider.instance.with_capacities(quotas[i]),
                provider.demand,
                provider.prices,
                demand_slack_penalty=settings.slack_penalty,
            )
            assert result.costs[i] == direct.objective
            assert np.array_equal(
                result.duals[i], direct.capacity_duals.sum(axis=0)
            )
            assert result.shortfalls[i] == float(direct.demand_slack.sum())
            assert np.array_equal(controls[i], direct.first_control)


def _assert_equilibria_identical(a, b):
    assert a.iterations == b.iterations
    assert a.converged == b.converged
    assert a.total_cost == b.total_cost
    assert a.cost_history == b.cost_history
    assert np.array_equal(a.provider_costs, b.provider_costs)
    assert np.array_equal(a.quotas, b.quotas)
    assert a.total_shortfall == b.total_shortfall
    for sa, sb in zip(a.solutions, b.solutions):
        assert np.array_equal(sa.trajectory.states, sb.trajectory.states)
        assert np.array_equal(sa.capacity_duals, sb.capacity_duals)
        assert np.array_equal(sa.demand_slack, sb.demand_slack)


class TestBitwiseIdentity:
    def test_equilibrium_identical_at_any_jobs_count(self):
        providers, capacity = _population(num_providers=4)
        config = BestResponseConfig(epsilon=1e-3, max_iterations=6)
        serial = compute_equilibrium(providers, capacity, config, jobs=1)
        for jobs in (2, 3, 4):
            sharded = compute_equilibrium(
                providers, capacity, config, jobs=jobs
            )
            _assert_equilibria_identical(serial, sharded)

    def test_equilibrium_identical_without_workspace_reuse(self):
        providers, capacity = _population(num_providers=3)
        config = BestResponseConfig(
            epsilon=1e-3, max_iterations=4, reuse_workspaces=False
        )
        serial = compute_equilibrium(providers, capacity, config, jobs=1)
        sharded = compute_equilibrium(providers, capacity, config, jobs=2)
        _assert_equilibria_identical(serial, sharded)

    def test_mpc_game_identical_at_any_jobs_count(self):
        providers, capacity = _population(num_providers=3, horizon=4)
        config = MPCGameConfig(window=2, coordination_rounds=2)
        serial = run_mpc_game(providers, capacity, config, jobs=1)
        for jobs in (2, 3):
            sharded = run_mpc_game(providers, capacity, config, jobs=jobs)
            assert sharded.total_cost == serial.total_cost
            assert np.array_equal(
                sharded.provider_costs, serial.provider_costs
            )
            assert sharded.total_shortfall == serial.total_shortfall
            assert len(sharded.periods) == len(serial.periods)
            for pa, pb in zip(sharded.periods, serial.periods):
                assert np.array_equal(pa.quotas, pb.quotas)
                assert np.array_equal(pa.states, pb.states)
                assert np.array_equal(pa.capacity_used, pb.capacity_used)


class TestCallerOwnedPool:
    def test_compute_equilibrium_leaves_external_pool_open(self):
        providers, capacity = _population(num_providers=3)
        config = BestResponseConfig(epsilon=1e-3, max_iterations=4)
        with ProviderPool(
            providers, jobs=2, settings=config.pool_settings()
        ) as pool:
            first = compute_equilibrium(providers, capacity, config, pool=pool)
            # The pool must survive the call so its warm workspaces can be
            # reused; the repeat run converges to the same equilibrium (to
            # solver tolerance — warm iterates carry history, so this is
            # deliberately not a bitwise comparison).
            second = compute_equilibrium(providers, capacity, config, pool=pool)
        assert second.total_cost == pytest.approx(first.total_cost, rel=1e-4)
        assert second.quotas == pytest.approx(first.quotas, rel=1e-3, abs=1e-6)
        # A fresh self-owned pool at the same jobs count is bitwise equal.
        owned = compute_equilibrium(providers, capacity, config, jobs=2)
        _assert_equilibria_identical(first, owned)

    def test_pool_population_mismatch_rejected(self):
        providers, capacity = _population(num_providers=3)
        config = BestResponseConfig()
        with ProviderPool(providers[:2], settings=config.pool_settings()) as pool:
            with pytest.raises(ValueError, match="pool holds"):
                compute_equilibrium(providers, capacity, config, pool=pool)


class TestWorkerCrashRecovery:
    def test_dead_worker_error_names_worker_and_shard(self):
        """With no respawn budget a killed child fails fast and loudly."""
        providers, capacity = _population(num_providers=4)
        quotas = np.tile(capacity / 4, (4, 1))
        settings = PoolSettings(max_respawns=0, recv_timeout=30.0)
        with ProviderPool(providers, jobs=2, settings=settings) as pool:
            pool.run_round(quotas)
            pid = pool.kill_worker(1)
            with pytest.raises(DeadWorkerError) as excinfo:
                pool.run_round(quotas)
        error = excinfo.value
        assert error.rank == 1
        assert error.pid == pid
        assert error.shard == (1, 3)
        assert "rank=1" in str(error) and "[1, 3]" in str(error)

    def test_round_completes_through_worker_crash(self):
        """A killed child is respawned with its shard and the round's
        reports stay correct (cold workspaces: tolerance, not bitwise)."""
        providers, capacity = _population(num_providers=4)
        quotas = np.tile(capacity / 4, (4, 1))
        settings = PoolSettings(max_respawns=2, respawn_backoff=0.0)
        with ProviderPool(providers, jobs=2, settings=settings) as pool:
            before = pool.run_round(quotas)
            pool.kill_worker(0)
            after = pool.run_round(quotas)
            np.testing.assert_allclose(after.costs, before.costs, rtol=1e-5)
            np.testing.assert_allclose(
                after.duals, before.duals, rtol=1e-4, atol=1e-6
            )

    def test_respawned_worker_keeps_per_period_problem_data(self):
        """set_problems payloads shipped before the crash must be re-shipped
        to the replacement, or it would silently solve the wrong period."""
        providers, capacity = _population(num_providers=2, horizon=4)
        quotas = np.tile(capacity / 2, (2, 1))
        demands = [p.demand * 0.5 for p in providers]
        settings = PoolSettings(max_respawns=1, respawn_backoff=0.0)
        with ProviderPool(providers, jobs=2, settings=settings) as pool:
            pool.set_problems(demands=demands)
            before = pool.run_round(quotas)
            pool.kill_worker(0)
            after = pool.run_round(quotas)
            np.testing.assert_allclose(after.costs, before.costs, rtol=1e-5)

    def test_kill_worker_rejected_inline_and_out_of_range(self):
        providers, _ = _population(num_providers=2)
        pool = ProviderPool(providers, jobs=1)
        with pytest.raises(RuntimeError, match="inline"):
            pool.kill_worker(0)
        pool.close()
        with ProviderPool(providers, jobs=2) as pool:
            with pytest.raises(RuntimeError, match="rank"):
                pool.kill_worker(5)

    def test_crash_settings_validation(self):
        with pytest.raises(ValueError, match="recv_timeout"):
            PoolSettings(recv_timeout=0.0)
        with pytest.raises(ValueError, match="max_respawns"):
            PoolSettings(max_respawns=-1)
        with pytest.raises(ValueError, match="respawn_backoff"):
            PoolSettings(respawn_backoff=-0.5)
