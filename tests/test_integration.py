"""Integration tests: the full paper scenario end to end, plus the
top-level package API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.core.dspp import solve_dspp
from repro.prediction.ar import ARPredictor
from repro.prediction.naive import SeasonalNaivePredictor
from repro.prediction.oracle import OraclePredictor
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import build_paper_scenario


class TestTopLevelAPI:
    def test_lazy_exports_resolve(self):
        assert repro.solve_dspp is solve_dspp
        assert repro.MPCController is MPCController
        assert callable(repro.build_paper_scenario)
        assert repro.__version__

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_includes_exports(self):
        listing = dir(repro)
        assert "solve_dspp" in listing
        assert "compute_equilibrium" in listing


@pytest.fixture(scope="module")
def paper_scenario():
    return build_paper_scenario(num_periods=24, total_peak_rate=800.0, seed=11)


class TestPaperScenarioEndToEnd:
    def test_offline_optimum_feasible_and_audited(self, paper_scenario):
        solution = solve_dspp(
            paper_scenario.instance, paper_scenario.demand, paper_scenario.prices
        )
        coeff = paper_scenario.instance.demand_coefficients
        served = np.einsum("lv,tlv->tv", coeff, solution.trajectory.states)
        assert np.all(served >= paper_scenario.demand.T - 1e-3)
        assert solution.objective > 0

    def test_mpc_with_oracle_near_offline_optimum(self, paper_scenario):
        offline = solve_dspp(
            paper_scenario.instance, paper_scenario.demand, paper_scenario.prices
        )
        controller = MPCController(
            paper_scenario.instance,
            OraclePredictor(paper_scenario.demand),
            OraclePredictor(paper_scenario.prices),
            MPCConfig(window=6),
        )
        closed = run_closed_loop(
            controller, paper_scenario.demand, paper_scenario.prices
        )
        # The closed loop scores periods 1..K-1 while the offline solve
        # covers 1..K, so compare per-period averages; receding horizon
        # should be within ~25% of clairvoyant optimal here.
        offline_rate = offline.objective / paper_scenario.num_periods
        closed_rate = closed.total_cost / (paper_scenario.num_periods - 1)
        assert closed_rate <= offline_rate * 1.25
        assert closed.total_unmet_demand == pytest.approx(0.0, abs=1e-4)

    @staticmethod
    def _bare_shortfall(scenario, states, ratio):
        """Shortfall against the *bare* SLA requirement: the padded
        coefficients embed the cushion, so true service ability is
        ``ratio`` times what the padded accounting reports."""
        bare_coeff = scenario.instance.demand_coefficients * ratio
        served = np.einsum("lv,tlv->tv", bare_coeff, states)
        realized = scenario.demand[:, 1:].T
        return np.maximum(realized - served, 0.0), realized

    def test_capacity_cushion_reduces_ar_shortfall(self):
        # Imperfect prediction needs the Section IV-B capacity cushion:
        # with r = 1.3 the controller holds 30% above the bare SLA minimum,
        # absorbing Poisson noise the AR model cannot see.  AR remains a
        # poor model for hard on/off diurnal ramps (the paper concedes
        # this in its Figure 9 discussion), so shortfall shrinks but does
        # not vanish.
        fractions = {}
        for ratio in (1.0, 1.3):
            scenario = build_paper_scenario(
                num_periods=24, total_peak_rate=800.0, seed=11,
                reservation_ratio=ratio,
            )
            controller = MPCController(
                scenario.instance,
                ARPredictor(scenario.instance.num_locations, order=2),
                ARPredictor(scenario.instance.num_datacenters, order=2),
                MPCConfig(window=3, slack_penalty=100.0),
            )
            result = SimulationEngine(scenario, controller).run()
            unmet, realized = self._bare_shortfall(scenario, result.states, ratio)
            fractions[ratio] = unmet.sum() / realized.sum()
            assert result.summary.total_cost > 0
        assert fractions[1.3] < fractions[1.0]
        assert fractions[1.3] < 0.25

    def test_seasonal_predictor_improves_after_first_season(self):
        ratio = 1.3
        scenario = build_paper_scenario(
            num_periods=48, total_peak_rate=500.0, seed=3, reservation_ratio=ratio
        )
        controller = MPCController(
            scenario.instance,
            SeasonalNaivePredictor(scenario.instance.num_locations, season_length=24),
            SeasonalNaivePredictor(scenario.instance.num_datacenters, season_length=24),
            MPCConfig(window=3, slack_penalty=100.0),
        )
        result = run_closed_loop(controller, scenario.demand, scenario.prices)
        assert result.trajectory.num_steps == 47
        unmet, realized = self._bare_shortfall(
            scenario, result.trajectory.states, ratio
        )
        overall = unmet.sum() / realized.sum()
        day_two = unmet[24:].sum() / realized[24:].sum()
        assert overall < 0.15
        # Once a full season of history exists the forecasts sharpen.
        assert day_two < overall

    def test_price_chasing_shifts_load_geographically(self, paper_scenario):
        controller = MPCController(
            paper_scenario.instance,
            OraclePredictor(paper_scenario.demand),
            OraclePredictor(paper_scenario.prices),
            MPCConfig(window=4),
        )
        result = run_closed_loop(
            controller, paper_scenario.demand, paper_scenario.prices
        )
        servers = result.servers_per_datacenter()  # (K-1, L)
        # Every data center should be used at some point, and at least one
        # should show meaningful variation over the day (load migration).
        assert np.all(servers.max(axis=0) > 0)
        variation = servers.max(axis=0) - servers.min(axis=0)
        assert variation.max() > 1.0
