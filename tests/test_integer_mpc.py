"""Tests for the integer-in-the-loop MPC controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.integer_mpc import IntegerMPCController
from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.core.instance import DSPPInstance
from repro.prediction.oracle import OraclePredictor


@pytest.fixture
def instance():
    return DSPPInstance(
        datacenters=("dc0", "dc1"),
        locations=("v0", "v1"),
        sla_coefficients=np.array([[0.05, 0.08], [0.08, 0.05]]),
        reconfiguration_weights=np.array([0.5, 0.5]),
        capacities=np.array([100.0, 100.0]),
        initial_state=np.zeros((2, 2)),
    )


def _traces(K=10, seed=0):
    rng = np.random.default_rng(seed)
    demand = 100.0 * (1.0 + 0.3 * np.sin(2 * np.pi * np.arange(K) / 12.0))
    demand = np.vstack([demand, demand * 0.8])
    prices = np.vstack(
        [np.ones(K), 1.2 + 0.2 * np.sin(2 * np.pi * np.arange(K) / 8.0)]
    )
    return demand, prices


class TestIntegerMPC:
    def test_states_are_integral(self, instance):
        demand, prices = _traces()
        controller = IntegerMPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3),
        )
        result = run_closed_loop(controller, demand, prices)
        states = result.trajectory.states
        assert np.allclose(states, np.round(states), atol=1e-9)

    def test_demand_still_served(self, instance):
        demand, prices = _traces()
        controller = IntegerMPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3),
        )
        result = run_closed_loop(controller, demand, prices)
        # Integer rounding only ever adds capacity relative to the plan,
        # and the oracle plan covers realized demand exactly.
        assert result.total_unmet_demand == pytest.approx(0.0, abs=1e-6)

    def test_capacities_respected(self, instance):
        demand, prices = _traces()
        controller = IntegerMPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3),
        )
        result = run_closed_loop(controller, demand, prices)
        per_dc = result.trajectory.states.sum(axis=2)
        assert np.all(per_dc <= instance.capacities[None, :] + 1e-9)

    def test_cost_premium_over_continuous_is_small(self, instance):
        demand, prices = _traces()
        continuous = MPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3),
        )
        integral = IntegerMPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3),
        )
        base = run_closed_loop(continuous, demand, prices)
        rounded = run_closed_loop(integral, demand, prices)
        assert rounded.total_cost >= base.total_cost - 1e-6
        # ~10 servers per pair: rounding overhead must stay moderate.
        assert rounded.total_cost <= base.total_cost * 1.30

    def test_state_persists_between_steps(self, instance):
        demand, prices = _traces()
        controller = IntegerMPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=2),
        )
        first = controller.step(demand[:, 0], prices[:, 0])
        assert controller.state == pytest.approx(first.new_state)
        second = controller.step(demand[:, 1], prices[:, 1])
        assert second.new_state == pytest.approx(
            first.new_state + second.applied_control
        )
