"""Tests for repro.solvers.projections."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.solvers.projections import (
    project_box,
    project_halfspace,
    project_nonnegative,
    project_simplex,
)


class TestProjectBox:
    def test_inside_point_unchanged(self):
        z = np.array([0.5, 0.5])
        out = project_box(z, np.zeros(2), np.ones(2))
        assert out == pytest.approx(z)

    def test_clamps_both_sides(self):
        out = project_box(np.array([-1.0, 2.0]), np.zeros(2), np.ones(2))
        assert out == pytest.approx([0.0, 1.0])

    def test_open_bounds(self):
        out = project_box(
            np.array([-5.0, 5.0]), np.array([-np.inf, 0.0]), np.array([0.0, np.inf])
        )
        assert out == pytest.approx([-5.0, 5.0])

    def test_empty_box_raises(self):
        with pytest.raises(ValueError, match="empty box"):
            project_box(np.zeros(1), np.array([1.0]), np.array([0.0]))

    def test_does_not_mutate_input(self):
        z = np.array([5.0])
        project_box(z, np.zeros(1), np.ones(1))
        assert z[0] == 5.0


class TestProjectNonnegative:
    def test_zeroes_negatives_only(self):
        out = project_nonnegative(np.array([-1.0, 0.0, 2.0]))
        assert out == pytest.approx([0.0, 0.0, 2.0])


class TestProjectHalfspace:
    def test_interior_point_copied(self):
        z = np.array([0.0, 0.0])
        out = project_halfspace(z, np.array([1.0, 0.0]), 1.0)
        assert out == pytest.approx(z)
        assert out is not z

    def test_exterior_point_lands_on_boundary(self):
        out = project_halfspace(np.array([3.0, 0.0]), np.array([1.0, 0.0]), 1.0)
        assert out == pytest.approx([1.0, 0.0])

    def test_zero_normal_raises(self):
        with pytest.raises(ValueError, match="nonzero"):
            project_halfspace(np.zeros(2), np.zeros(2), 1.0)

    def test_projection_is_orthogonal(self):
        a = np.array([1.0, 2.0])
        z = np.array([5.0, 5.0])
        out = project_halfspace(z, a, 1.0)
        # Displacement must be parallel to the normal.
        displacement = z - out
        cross = displacement[0] * a[1] - displacement[1] * a[0]
        assert cross == pytest.approx(0.0, abs=1e-12)


class TestProjectSimplex:
    def test_already_on_simplex(self):
        z = np.array([0.2, 0.3, 0.5])
        assert project_simplex(z) == pytest.approx(z)

    def test_uniform_from_equal_input(self):
        out = project_simplex(np.array([5.0, 5.0]), total=1.0)
        assert out == pytest.approx([0.5, 0.5])

    def test_negative_entries_zeroed(self):
        out = project_simplex(np.array([2.0, -10.0]), total=1.0)
        assert out == pytest.approx([1.0, 0.0])

    def test_scaled_total(self):
        out = project_simplex(np.array([1.0, 2.0, 3.0]), total=60.0)
        assert out.sum() == pytest.approx(60.0)

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError, match="positive"):
            project_simplex(np.ones(2), total=0.0)


@settings(max_examples=50, deadline=None)
@given(
    z=hnp.arrays(
        np.float64,
        st.integers(1, 12),
        elements=st.floats(-50, 50, allow_nan=False),
    ),
    total=st.floats(0.1, 100.0),
)
def test_simplex_projection_properties(z, total):
    """Output is on the simplex and no closer point exists along z - out."""
    out = project_simplex(z, total=total)
    assert np.all(out >= -1e-12)
    assert out.sum() == pytest.approx(total, rel=1e-9, abs=1e-9)
    # Idempotence.
    again = project_simplex(out, total=total)
    assert again == pytest.approx(out, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    z=hnp.arrays(np.float64, 6, elements=st.floats(-10, 10, allow_nan=False)),
    seed=st.integers(0, 1000),
)
def test_box_projection_is_nonexpansive(z, seed):
    """||P(a) - P(b)|| <= ||a - b|| — the contraction ADMM relies on."""
    rng = np.random.default_rng(seed)
    lower = rng.uniform(-5, 0, 6)
    upper = lower + rng.uniform(0.1, 5, 6)
    other = rng.uniform(-10, 10, 6)
    pa = project_box(z, lower, upper)
    pb = project_box(other, lower, upper)
    assert np.linalg.norm(pa - pb) <= np.linalg.norm(z - other) + 1e-9
