"""Tests for the workload package (cities, diurnal, poisson, spikes, demand)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.geo import ACCESS_CITIES
from repro.workload.cities import population_weights, utc_offsets
from repro.workload.demand import DemandMatrix, build_demand_matrix, constant_demand
from repro.workload.diurnal import DiurnalEnvelope, OnOffEnvelope
from repro.workload.poisson import empirical_rates, nhpp_arrival_times, nhpp_counts
from repro.workload.spikes import FlashCrowd, apply_flash_crowds


class TestCities:
    def test_weights_sum_to_one(self):
        weights = population_weights()
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)

    def test_new_york_heaviest(self):
        weights = population_weights()
        index = [c.key for c in ACCESS_CITIES].index("new_york_ny")
        assert weights[index] == weights.max()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            population_weights(())

    def test_utc_offsets_align(self):
        offsets = utc_offsets()
        assert offsets.shape == (len(ACCESS_CITIES),)


class TestOnOffEnvelope:
    def test_working_hours_high(self):
        envelope = OnOffEnvelope(ramp_hours=0.0)
        factors = envelope.factor(np.array([12.0]))
        assert factors[0] == envelope.high

    def test_night_low(self):
        envelope = OnOffEnvelope(ramp_hours=0.0)
        assert envelope.factor(np.array([3.0]))[0] == envelope.low

    def test_timezone_shift(self):
        envelope = OnOffEnvelope(ramp_hours=0.0)
        # 20:00 UTC is 12:00 in UTC-8 — inside Pacific working hours.
        assert envelope.factor(np.array([20.0]), utc_offset_hours=-8.0)[0] == envelope.high
        assert envelope.factor(np.array([20.0]), utc_offset_hours=0.0)[0] == envelope.low

    def test_ramp_is_monotone_through_the_edge(self):
        envelope = OnOffEnvelope(ramp_hours=2.0)
        hours = np.array([6.5, 7.5, 8.5])
        factors = envelope.factor(hours)
        assert factors[0] <= factors[1] <= factors[2]

    def test_bounds_respected_everywhere(self):
        envelope = OnOffEnvelope(ramp_hours=1.5)
        factors = envelope.factor(np.linspace(0, 24, 200))
        assert np.all(factors >= envelope.low - 1e-12)
        assert np.all(factors <= envelope.high + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffEnvelope(on_start_hour=10.0, on_end_hour=9.0)
        with pytest.raises(ValueError):
            OnOffEnvelope(low=0.0)
        with pytest.raises(ValueError):
            OnOffEnvelope(ramp_hours=-1.0)


class TestDiurnalEnvelope:
    def test_peak_at_peak_hour(self):
        envelope = DiurnalEnvelope(peak_hour=14.0)
        assert envelope.factor(np.array([14.0]))[0] == pytest.approx(envelope.high)

    def test_trough_opposite_peak(self):
        envelope = DiurnalEnvelope(peak_hour=14.0)
        assert envelope.factor(np.array([2.0]))[0] == pytest.approx(envelope.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalEnvelope(peak_hour=24.0)
        with pytest.raises(ValueError):
            DiurnalEnvelope(low=2.0, high=1.0)


class TestNhppCounts:
    def test_mean_matches_rate(self, rng):
        counts = nhpp_counts(np.full(20_000, 7.0), rng)
        assert counts.mean() == pytest.approx(7.0, rel=0.05)

    def test_zero_rate_zero_counts(self, rng):
        assert np.all(nhpp_counts(np.zeros(100), rng) == 0)

    def test_duration_scales_mean(self, rng):
        counts = nhpp_counts(np.full(20_000, 3.0), rng, period_duration=2.0)
        assert counts.mean() == pytest.approx(6.0, rel=0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            nhpp_counts(np.array([-1.0]), rng)
        with pytest.raises(ValueError):
            nhpp_counts(np.array([1.0]), rng, period_duration=0.0)


class TestNhppThinning:
    def test_homogeneous_rate_recovered(self, rng):
        times = nhpp_arrival_times(lambda t: 5.0, 5.0, 2000.0, rng)
        assert times.size / 2000.0 == pytest.approx(5.0, rel=0.05)

    def test_sorted_within_horizon(self, rng):
        times = nhpp_arrival_times(lambda t: 2.0, 4.0, 100.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 100.0

    def test_rate_above_bound_raises(self, rng):
        with pytest.raises(ValueError, match="outside"):
            nhpp_arrival_times(lambda t: 10.0, 5.0, 100.0, rng)

    def test_agrees_with_count_sampler(self, rng):
        # Piecewise rates: bin thinning output and compare distributions.
        rate_fn = lambda t: 8.0 if t % 2 < 1 else 2.0
        times = nhpp_arrival_times(rate_fn, 8.0, 4000.0, rng)
        rates = empirical_rates(times, 4000, 1.0)
        high = rates[::2].mean()
        low = rates[1::2].mean()
        assert high == pytest.approx(8.0, rel=0.08)
        assert low == pytest.approx(2.0, rel=0.15)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            nhpp_arrival_times(lambda t: 1.0, 0.0, 10.0, rng)
        with pytest.raises(ValueError):
            nhpp_arrival_times(lambda t: 1.0, 1.0, 0.0, rng)
        with pytest.raises(ValueError):
            empirical_rates(np.array([1.0]), 0)


class TestFlashCrowd:
    def test_multiplier_shape(self):
        event = FlashCrowd(0, start_period=5, peak_multiplier=4.0, ramp_periods=2, decay_periods=2.0)
        assert event.multiplier(4) == 1.0
        assert event.multiplier(5) == 1.0  # onset
        assert event.multiplier(7) == pytest.approx(4.0)  # peak
        assert 1.0 < event.multiplier(10) < 4.0  # decaying

    def test_apply_compounds(self):
        rates = np.ones((2, 10))
        events = [
            FlashCrowd(0, 0, peak_multiplier=2.0, ramp_periods=1, decay_periods=100.0),
            FlashCrowd(0, 0, peak_multiplier=3.0, ramp_periods=1, decay_periods=100.0),
        ]
        out = apply_flash_crowds(rates, events)
        assert out[0, 1] == pytest.approx(6.0)
        assert out[1] == pytest.approx(np.ones(10))  # other location untouched

    def test_apply_does_not_mutate(self):
        rates = np.ones((1, 5))
        apply_flash_crowds(rates, [FlashCrowd(0, 0, peak_multiplier=2.0)])
        assert rates == pytest.approx(np.ones((1, 5)))

    def test_out_of_range_location(self):
        with pytest.raises(IndexError):
            apply_flash_crowds(np.ones((1, 5)), [FlashCrowd(3, 0, peak_multiplier=2.0)])

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(0, 0, peak_multiplier=1.0)
        with pytest.raises(ValueError):
            FlashCrowd(-1, 0, peak_multiplier=2.0)
        with pytest.raises(ValueError):
            FlashCrowd(0, 0, peak_multiplier=2.0, ramp_periods=0)


class TestDemandMatrix:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandMatrix(("a",), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            DemandMatrix(("a",), -np.ones((1, 3)))

    def test_window(self):
        matrix = DemandMatrix(("a",), np.arange(6, dtype=float).reshape(1, 6))
        window = matrix.window(2, 3)
        assert window.rates == pytest.approx(np.array([[2.0, 3.0, 4.0]]))
        with pytest.raises(ValueError):
            matrix.window(4, 5)

    def test_accessors(self):
        matrix = DemandMatrix(("a", "b"), np.ones((2, 4)))
        assert matrix.at_period(0) == pytest.approx([1.0, 1.0])
        assert matrix.total_per_period() == pytest.approx(np.full(4, 2.0))


class TestBuildDemandMatrix:
    def test_deterministic_mean_rates(self):
        matrix = build_demand_matrix(1000.0, 24, rng=None)
        assert matrix.num_locations == 24
        assert matrix.num_periods == 24
        # Peak aggregate should be below the nominal peak (time zones shift
        # per-city peaks apart) but within a factor of ~2.
        assert 300.0 < matrix.total_per_period().max() <= 1000.0

    def test_population_ordering_preserved_at_fixed_local_time(self):
        matrix = build_demand_matrix(1000.0, 24, rng=None)
        ny = matrix.locations.index("new_york_ny")
        memphis = matrix.locations.index("memphis_tn")
        assert matrix.rates[ny].max() > matrix.rates[memphis].max()

    def test_stochastic_reproducible(self):
        a = build_demand_matrix(500.0, 12, rng=np.random.default_rng(3))
        b = build_demand_matrix(500.0, 12, rng=np.random.default_rng(3))
        assert a.rates == pytest.approx(b.rates)

    def test_flash_crowd_applied(self):
        spike = FlashCrowd(0, 2, peak_multiplier=10.0, ramp_periods=1, decay_periods=1.0)
        base = build_demand_matrix(500.0, 8, rng=None)
        spiked = build_demand_matrix(500.0, 8, flash_crowds=[spike], rng=None)
        assert spiked.rates[0, 3] > base.rates[0, 3] * 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_demand_matrix(0.0, 24)
        with pytest.raises(ValueError):
            build_demand_matrix(10.0, 0)


class TestConstantDemand:
    def test_shape_and_values(self):
        matrix = constant_demand([5.0, 7.0], 4)
        assert matrix.rates.shape == (2, 4)
        assert np.all(matrix.rates[1] == 7.0)
        assert matrix.locations == ("v0", "v1")


@settings(max_examples=30, deadline=None)
@given(
    offset=st.integers(-9, 0),
    hour=st.floats(0.0, 48.0),
)
def test_envelope_periodicity(offset, hour):
    """Envelopes are 24h-periodic in local time."""
    envelope = DiurnalEnvelope()
    a = envelope.factor(np.array([hour]), utc_offset_hours=offset)
    b = envelope.factor(np.array([hour + 24.0]), utc_offset_hours=offset)
    assert a[0] == pytest.approx(b[0], abs=1e-9)


class TestWeeklyEnvelope:
    def test_weekdays_unmodified(self):
        from repro.workload.diurnal import WeeklyEnvelope

        weekly = WeeklyEnvelope(OnOffEnvelope(ramp_hours=0.0), weekend_factor=0.5)
        hours = np.array([12.0])  # day 0 noon
        base = OnOffEnvelope(ramp_hours=0.0).factor(hours)
        assert weekly.factor(hours) == pytest.approx(base)

    def test_weekend_scaled(self):
        from repro.workload.diurnal import WeeklyEnvelope

        weekly = WeeklyEnvelope(OnOffEnvelope(ramp_hours=0.0), weekend_factor=0.5)
        saturday_noon = np.array([5 * 24.0 + 12.0])
        base = OnOffEnvelope(ramp_hours=0.0).factor(saturday_noon)
        assert weekly.factor(saturday_noon) == pytest.approx(base * 0.5)

    def test_week_periodicity(self):
        from repro.workload.diurnal import WeeklyEnvelope

        weekly = WeeklyEnvelope(DiurnalEnvelope(), weekend_factor=0.7)
        hours = np.linspace(0.0, 24.0 * 7, 50)
        a = weekly.factor(hours)
        b = weekly.factor(hours + 24.0 * 7)
        assert a == pytest.approx(b)

    def test_validation(self):
        from repro.workload.diurnal import WeeklyEnvelope

        with pytest.raises(ValueError):
            WeeklyEnvelope(OnOffEnvelope(), weekend_factor=0.0)

    def test_timezone_shifts_weekend_boundary(self):
        from repro.workload.diurnal import WeeklyEnvelope

        weekly = WeeklyEnvelope(OnOffEnvelope(ramp_hours=0.0), weekend_factor=0.5)
        # UTC hour 5*24+2 is still Friday evening at UTC-8 (local day 4).
        boundary = np.array([5 * 24.0 + 2.0])
        west = weekly.factor(boundary, utc_offset_hours=-8.0)
        utc = weekly.factor(boundary, utc_offset_hours=0.0)
        # At UTC it is Saturday (scaled); on the west coast still Friday.
        base_west = OnOffEnvelope(ramp_hours=0.0).factor(boundary, utc_offset_hours=-8.0)
        assert west == pytest.approx(base_west)
        base_utc = OnOffEnvelope(ramp_hours=0.0).factor(boundary)
        assert utc == pytest.approx(base_utc * 0.5)
