"""Tests for reprolint (:mod:`repro.devtools.lint`).

Every rule must (a) fire on a minimal bad snippet, (b) stay quiet on the
corresponding good snippet, and (c) respect suppression comments.  Paths
are faked so the package-scoped rules (RL001's ``workload/`` exemption,
RL003's solver-layer filter) can be exercised without touching disk.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import Diagnostic, LintRule, lint_source, main


def rules_of(source: str, path: str = "src/repro/core/mod.py") -> set[str]:
    """Lint a dedented snippet and return the set of rule names found."""
    return {d.rule.value for d in lint_source(textwrap.dedent(source), path)}


class TestRL001Randomness:
    def test_fires_on_legacy_global_call(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def sample() -> float:
            return np.random.uniform()
        """
        assert "RL001" in rules_of(src)

    def test_fires_on_global_seed(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def setup() -> None:
            np.random.seed(0)
        """
        assert "RL001" in rules_of(src)

    def test_fires_on_unseeded_default_rng(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def make() -> np.random.Generator:
            return np.random.default_rng()
        """
        assert "RL001" in rules_of(src)

    def test_quiet_on_seeded_default_rng(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def make(seed: int) -> np.random.Generator:
            return np.random.default_rng(seed)
        """
        assert "RL001" not in rules_of(src)

    def test_quiet_on_injected_generator(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def sample(rng: np.random.Generator) -> float:
            return float(rng.uniform())
        """
        assert "RL001" not in rules_of(src)

    def test_workload_fixtures_are_exempt(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def sample() -> float:
            return np.random.uniform()
        """
        assert "RL001" not in rules_of(src, path="src/repro/workload/fixture.py")


class TestRL002Annotations:
    def test_fires_on_missing_parameter_annotation(self) -> None:
        src = """
        __all__ = []
        def combine(a, b: int) -> int:
            return b
        """
        diags = lint_source(textwrap.dedent(src), "src/repro/core/mod.py")
        messages = [d.message for d in diags if d.rule is LintRule.RL002]
        assert messages and "'combine'" in messages[0] and "a" in messages[0]

    def test_fires_on_missing_return_annotation(self) -> None:
        src = """
        __all__ = []
        def f(a: int):
            return a
        """
        assert "RL002" in rules_of(src)

    def test_quiet_on_fully_annotated(self) -> None:
        src = """
        __all__ = []
        def f(a: int, *args: int, flag: bool = True, **kw: float) -> int:
            return a
        """
        assert "RL002" not in rules_of(src)

    def test_private_functions_exempt(self) -> None:
        src = """
        __all__ = []
        def _helper(a):
            return a
        """
        assert "RL002" not in rules_of(src)

    def test_self_needs_no_annotation(self) -> None:
        src = """
        __all__ = []
        class Thing:
            def value(self) -> int:
                return 1
        """
        assert "RL002" not in rules_of(src)

    def test_nested_functions_exempt(self) -> None:
        src = """
        __all__ = []
        def outer() -> int:
            def inner(x):
                return x
            return inner(1)
        """
        assert "RL002" not in rules_of(src)


class TestRL003ParameterMutation:
    SOLVER = "src/repro/solvers/bad.py"

    def test_fires_on_element_assignment(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def clamp(x: np.ndarray) -> np.ndarray:
            x[x < 0] = 0.0
            return x
        """
        assert "RL003" in rules_of(src, path=self.SOLVER)

    def test_fires_on_augmented_assignment(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def shift(x: np.ndarray, delta: float) -> np.ndarray:
            x += delta
            return x
        """
        assert "RL003" in rules_of(src, path=self.SOLVER)

    def test_inplace_suffix_is_exempt(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def clamp_inplace(x: np.ndarray) -> None:
            x[x < 0] = 0.0
        """
        assert "RL003" not in rules_of(src, path=self.SOLVER)

    def test_quiet_after_defensive_copy(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def clamp(x: np.ndarray) -> np.ndarray:
            x = x.copy()
            x[x < 0] = 0.0
            return x
        """
        assert "RL003" not in rules_of(src, path=self.SOLVER)

    def test_quiet_on_local_arrays(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def build(n: int) -> np.ndarray:
            out = np.zeros(n)
            out[0] = 1.0
            return out
        """
        assert "RL003" not in rules_of(src, path=self.SOLVER)

    def test_rule_scoped_to_solver_layers(self) -> None:
        src = """
        import numpy as np
        __all__ = []
        def clamp(x: np.ndarray) -> np.ndarray:
            x[x < 0] = 0.0
            return x
        """
        assert "RL003" not in rules_of(src, path="src/repro/workload/mod.py")


class TestRL004FloatEquality:
    def test_fires_on_float_literal_equality(self) -> None:
        src = """
        __all__ = []
        def check(a: float) -> bool:
            return a == 1.5
        """
        assert "RL004" in rules_of(src)

    def test_fires_on_not_equal(self) -> None:
        src = """
        __all__ = []
        def check(a: float) -> bool:
            return a != 0.0
        """
        assert "RL004" in rules_of(src)

    def test_quiet_on_integer_comparison(self) -> None:
        src = """
        __all__ = []
        def check(a: int) -> bool:
            return a == 1
        """
        assert "RL004" not in rules_of(src)

    def test_quiet_on_ordering(self) -> None:
        src = """
        __all__ = []
        def check(a: float) -> bool:
            return a <= 1.5
        """
        assert "RL004" not in rules_of(src)


class TestRL005FrozenDataclasses:
    def test_fires_on_thawed_config(self) -> None:
        src = """
        from dataclasses import dataclass
        __all__ = []
        @dataclass
        class SolverConfig:
            tol: float = 1e-6
        """
        assert "RL005" in rules_of(src)

    def test_fires_on_frozen_false(self) -> None:
        src = """
        from dataclasses import dataclass
        __all__ = []
        @dataclass(frozen=False)
        class SolverSettings:
            tol: float = 1e-6
        """
        assert "RL005" in rules_of(src)

    def test_quiet_on_frozen(self) -> None:
        src = """
        from dataclasses import dataclass
        __all__ = []
        @dataclass(frozen=True)
        class SolverConfig:
            tol: float = 1e-6
        """
        assert "RL005" not in rules_of(src)

    def test_quiet_on_non_data_holder_names(self) -> None:
        src = """
        from dataclasses import dataclass
        __all__ = []
        @dataclass
        class RunningTally:
            count: int = 0
        """
        assert "RL005" not in rules_of(src)


class TestRL006DunderAll:
    def test_fires_when_missing(self) -> None:
        assert "RL006" in rules_of("x = 1\n")

    def test_quiet_when_declared(self) -> None:
        assert "RL006" not in rules_of('__all__ = ["x"]\nx = 1\n')

    def test_annotated_declaration_counts(self) -> None:
        assert "RL006" not in rules_of("__all__: list[str] = []\n")

    def test_main_modules_exempt(self) -> None:
        assert "RL006" not in rules_of("x = 1\n", path="src/repro/__main__.py")


class TestSuppression:
    def test_line_suppression(self) -> None:
        src = """
        __all__ = []
        def check(a: float) -> bool:
            return a == 1.5  # reprolint: disable=RL004
        """
        assert "RL004" not in rules_of(src)

    def test_line_suppression_is_rule_specific(self) -> None:
        src = """
        __all__ = []
        def check(a: float) -> bool:
            return a == 1.5  # reprolint: disable=RL001
        """
        assert "RL004" in rules_of(src)

    def test_comma_separated_list(self) -> None:
        src = """
        __all__ = []
        def check(a, b: float) -> bool:  # reprolint: disable=RL002,RL004
            return b == 1.5  # reprolint: disable=RL004
        """
        assert rules_of(src) == set()

    def test_disable_all(self) -> None:
        src = """
        __all__ = []
        def check(a: float) -> bool:
            return a == 1.5  # reprolint: disable=all
        """
        assert "RL004" not in rules_of(src)

    def test_file_level_suppression(self) -> None:
        src = """
        # reprolint: disable-file=RL006
        x = 1
        """
        assert "RL006" not in rules_of(src)


class TestRunner:
    def test_diagnostic_format(self) -> None:
        diag = Diagnostic(
            path="src/x.py", line=3, col=4, rule=LintRule.RL004, message="bad"
        )
        assert diag.format() == "src/x.py:3:4: RL004 bad"

    def test_select_filters_rules(self) -> None:
        src = textwrap.dedent(
            """
            def check(a: float) -> bool:
                return a == 1.5
            """
        )
        only = lint_source(src, "src/repro/core/mod.py", select={"RL006"})
        assert {d.rule for d in only} == {LintRule.RL006}

    def test_cli_exit_codes(self, tmp_path, capsys) -> None:
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a):\n    return a == 1.5\n")
        good = tmp_path / "good.py"
        good.write_text('__all__: list[str] = []\n')

        assert main([str(good)]) == 0
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL002" in out and "RL004" in out and "RL006" in out
        assert f"{bad}:" in out

    def test_cli_usage_errors(self, tmp_path) -> None:
        assert main([str(tmp_path / "missing.py")]) == 2

    def test_cli_no_paths_defaults_to_repo_layout(self, tmp_path, monkeypatch) -> None:
        # With no paths the CLI lints src/ and benchmarks/ if present, and
        # is a usage error only when neither exists (e.g. a scratch dir).
        monkeypatch.chdir(tmp_path)
        assert main([]) == 2
        src = tmp_path / "src"
        src.mkdir()
        (src / "clean.py").write_text('__all__: list[str] = []\n')
        assert main([]) == 0

    def test_cli_unknown_select_rule_is_usage_error(self, tmp_path) -> None:
        # A typo'd --select must not silently disable the whole lint.
        good = tmp_path / "good.py"
        good.write_text('__all__: list[str] = []\n')
        assert main(["--select", "RL999", str(good)]) == 2

    def test_cli_syntax_error_is_usage_error(self, tmp_path) -> None:
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2

    def test_cli_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in LintRule:
            assert rule.value in out

    def test_repository_is_clean(self) -> None:
        """The repo's own source must lint clean — the CI gate."""
        src = Path(__file__).resolve().parent.parent / "src"
        assert main([str(src)]) == 0


FIXTURES = Path(__file__).resolve().parent / "fixtures" / "static"
SOLVER_PATH = "src/repro/solvers/fixture.py"
SERVICE_PATH = "src/repro/service/fixture.py"


class TestFixtureCorpus:
    """Every dataflow rule has an on-disk true positive and a clean twin."""

    @pytest.mark.parametrize(
        "fixture",
        sorted(p.name for p in FIXTURES.glob("rl*.py")),
    )
    def test_fixture_produces_exactly_its_named_rule(self, fixture: str) -> None:
        source = (FIXTURES / fixture).read_text()
        # RL012 is scoped to service/ supervision code; everything else
        # exercises the numeric-package scopes.
        lint_path = SERVICE_PATH if fixture.startswith("rl012") else SOLVER_PATH
        found = {d.rule.value for d in lint_source(source, lint_path)}
        if fixture.endswith("_ok.py"):
            assert found == set()
        else:
            expected = fixture.split("_")[0].upper()
            assert found == {expected}

    def test_every_dataflow_rule_has_a_true_positive_fixture(self) -> None:
        covered = {p.name.split("_")[0].upper() for p in FIXTURES.glob("rl*.py")}
        assert covered >= {"RL007", "RL008", "RL009", "RL010", "RL011", "RL012"}


class TestRL007Division:
    def test_class_wide_guard_covers_attribute_denominators(self) -> None:
        src = """
        import numpy as np
        __all__ = ["Scaler"]

        class Scaler:
            def __init__(self, d: np.ndarray) -> None:
                self.d = d
                assert np.all(self.d > 0.0)

            def unscale(self, v: np.ndarray) -> np.ndarray:
                return v / self.d
        """
        assert "RL007" not in rules_of(src, SOLVER_PATH)

    def test_unguarded_attribute_is_flagged(self) -> None:
        src = """
        import numpy as np
        __all__ = ["Scaler"]

        class Scaler:
            def __init__(self, d: np.ndarray) -> None:
                self.d = d

            def unscale(self, v: np.ndarray) -> np.ndarray:
                return v / self.d
        """
        assert "RL007" in rules_of(src, SOLVER_PATH)

    def test_only_active_in_solver_and_core_packages(self) -> None:
        src = """
        import numpy as np
        __all__ = ["ratio"]

        def ratio(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            return a / b
        """
        assert "RL007" in rules_of(src, "src/repro/core/mod.py")
        assert "RL007" not in rules_of(src, "src/repro/experiments/mod.py")

    def test_arange_from_one_is_a_positive_denominator(self) -> None:
        src = """
        import numpy as np
        __all__ = ["means"]

        def means(v: np.ndarray) -> np.ndarray:
            return np.cumsum(v) / np.arange(1, v.size + 1)
        """
        assert "RL007" not in rules_of(src, SOLVER_PATH)


class TestRL008Nondeterminism:
    def test_seed_from_pid_is_flagged(self) -> None:
        src = """
        import os
        import numpy as np
        __all__ = ["rng"]

        def rng() -> np.random.Generator:
            return np.random.default_rng(os.getpid())
        """
        assert "RL008" in rules_of(src)

    def test_sorting_a_set_comprehension_is_not_enough(self) -> None:
        # Iterating the set literal directly is still order-dependent.
        src = """
        __all__ = ["walk"]

        def walk() -> list[int]:
            return [x for x in {3, 1, 2}]
        """
        assert "RL008" in rules_of(src)


class TestRL009DiscardedResults:
    def test_underscore_assignment_is_an_explicit_discard(self) -> None:
        src = """
        __all__ = ["fire"]

        def fire(solver) -> None:  # reprolint: disable=RL002
            _ = solver.factorize()
        """
        assert "RL009" not in rules_of(src)


class TestRL010SilentExcept:
    def test_not_active_outside_numeric_packages(self) -> None:
        src = """
        __all__ = ["attempt"]

        def attempt(paths: list[str]) -> None:
            for path in paths:
                try:
                    open(path).close()  # reprolint: disable=RL003
                except OSError:
                    continue
        """
        assert "RL010" in rules_of(src, SOLVER_PATH)
        assert "RL010" not in rules_of(src, "src/repro/experiments/mod.py")


class TestRL011ErrstateSuppression:
    def test_sanitize_module_is_allowlisted(self) -> None:
        src = """
        import numpy as np
        __all__ = ["quiet"]

        def quiet(v: np.ndarray) -> np.ndarray:
            with np.errstate(invalid="ignore"):
                return np.sqrt(v)
        """
        assert "RL011" in rules_of(src, SOLVER_PATH)
        assert "RL011" not in rules_of(src, "src/repro/sanitize.py")

    def test_seterr_is_flagged(self) -> None:
        src = """
        import numpy as np
        __all__ = ["hush"]

        def hush() -> None:
            np.seterr(all="ignore")
        """
        assert "RL011" in rules_of(src)


class TestCLIFeatures:
    def test_json_format_is_machine_readable(self, tmp_path, capsys) -> None:
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a):\n    return a == 1.5\n")
        assert main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["total"] == len(payload["diagnostics"]) > 0
        rules_seen = {d["rule"] for d in payload["diagnostics"]}
        assert set(payload["counts"]) == rules_seen
        for diag in payload["diagnostics"]:
            assert {"path", "line", "col", "rule", "message"} <= set(diag)

    def test_json_clean_run(self, tmp_path, capsys) -> None:
        good = tmp_path / "good.py"
        good.write_text('__all__: list[str] = []\n')
        assert main(["--format", "json", str(good)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 0 and payload["diagnostics"] == []

    def test_rule_flag_restricts_the_run(self, tmp_path, capsys) -> None:
        bad = tmp_path / "bad.py"
        bad.write_text("def f(a):\n    return a == 1.5\n")
        assert main(["--rule", "RL004", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out and "RL002" not in out

    def test_benchmarks_tree_is_clean(self) -> None:
        """benchmarks/ is part of the default lint surface and must pass."""
        benchmarks = Path(__file__).resolve().parent.parent / "benchmarks"
        assert main([str(benchmarks)]) == 0


class TestRL012BroadExceptInService:
    def test_swallowing_broad_except_flagged_in_service(self) -> None:
        src = """
        __all__ = ["loop"]

        def loop(steps: list[object]) -> None:
            for step in steps:
                try:
                    step()  # type: ignore[operator]
                except Exception:
                    pass
        """
        assert "RL012" in rules_of(src, "src/repro/service/service.py")

    def test_bare_except_and_tuple_forms_flagged(self) -> None:
        src = """
        __all__ = ["a", "b"]

        def a(step: object) -> None:
            try:
                step()  # type: ignore[operator]
            except:  # noqa: E722
                return

        def b(step: object) -> None:
            try:
                step()  # type: ignore[operator]
            except (ValueError, Exception):
                return
        """
        found = rules_of(src, "src/repro/service/service.py")
        assert "RL012" in found

    def test_reraise_and_record_both_pass(self) -> None:
        src = """
        __all__ = ["reraises", "records"]

        def reraises(step: object) -> None:
            try:
                step()  # type: ignore[operator]
            except Exception as exc:
                raise RuntimeError("supervised failure") from exc

        def records(step: object, log: object) -> None:
            try:
                step()  # type: ignore[operator]
            except Exception as exc:
                log.record(0, "service", "error", repr(exc))  # type: ignore[attr-defined]
        """
        assert "RL012" not in rules_of(src, "src/repro/service/service.py")

    def test_narrow_handlers_and_other_packages_exempt(self) -> None:
        src = """
        __all__ = ["narrow"]

        def narrow(step: object) -> None:
            try:
                step()  # type: ignore[operator]
            except ValueError:
                return
        """
        assert "RL012" not in rules_of(src, "src/repro/service/service.py")
        broad = """
        __all__ = ["loop"]

        def loop(step: object) -> None:
            try:
                step()  # type: ignore[operator]
            except Exception:
                return
        """
        assert "RL012" not in rules_of(broad, "src/repro/experiments/pool.py")

    def test_per_line_suppression_for_designed_fallbacks(self) -> None:
        src = """
        __all__ = ["fallback"]

        def fallback(step: object) -> int:
            try:
                step()  # type: ignore[operator]
                return 1
            except Exception:  # reprolint: disable=RL012
                return 0
        """
        assert "RL012" not in rules_of(src, "src/repro/service/service.py")
