"""Tests for the exact DSPP solve (repro.core.dspp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dspp import DSPPInfeasibleError, solve_dspp
from repro.core.instance import DSPPInstance


class TestBasicSolve:
    def test_demand_constraint_met_every_period(self, small_instance, small_demand, small_prices):
        solution = solve_dspp(small_instance, small_demand, small_prices)
        coeff = small_instance.demand_coefficients
        for t in range(small_demand.shape[1]):
            served = (coeff * solution.trajectory.states[t]).sum(axis=0)
            assert np.all(served >= small_demand[:, t] - 1e-5)

    def test_trajectory_consistent(self, small_instance, small_demand, small_prices):
        solution = solve_dspp(small_instance, small_demand, small_prices)
        # Trajectory construction itself validates the state equation;
        # additionally the first state must equal x0 + u0.
        assert solution.trajectory.states[0] == pytest.approx(
            small_instance.initial_state + solution.trajectory.controls[0]
        )

    def test_objective_matches_cost_audit(self, small_instance, small_demand, small_prices):
        solution = solve_dspp(small_instance, small_demand, small_prices)
        assert solution.objective == pytest.approx(solution.costs.total)

    def test_states_nonnegative(self, small_instance, small_demand, small_prices):
        solution = solve_dspp(small_instance, small_demand, small_prices)
        assert np.all(solution.trajectory.states >= 0)

    def test_first_control_shape(self, small_instance, small_demand, small_prices):
        solution = solve_dspp(small_instance, small_demand, small_prices)
        assert solution.first_control.shape == (2, 2)


class TestOptimalityStructure:
    def test_prefers_cheaper_datacenter(self):
        # Symmetric SLA, dc1 twice as expensive: all load must go to dc0.
        instance = DSPPInstance(
            datacenters=("cheap", "dear"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.1]]),
            reconfiguration_weights=np.array([0.01, 0.01]),
            capacities=np.full(2, np.inf),
            initial_state=np.zeros((2, 1)),
        )
        solution = solve_dspp(
            instance, np.full((1, 4), 100.0), np.tile([[1.0], [2.0]], (1, 4))
        )
        servers = solution.trajectory.servers_per_datacenter()[-1]
        assert servers[0] > 9.0
        assert servers[1] == pytest.approx(0.0, abs=1e-3)

    def test_capacity_forces_spill(self):
        instance = DSPPInstance(
            datacenters=("cheap", "dear"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.1]]),
            reconfiguration_weights=np.array([0.01, 0.01]),
            capacities=np.array([5.0, np.inf]),
            initial_state=np.zeros((2, 1)),
        )
        solution = solve_dspp(
            instance, np.full((1, 3), 100.0), np.tile([[1.0], [2.0]], (1, 3))
        )
        servers = solution.trajectory.servers_per_datacenter()[-1]
        assert servers[0] == pytest.approx(5.0, abs=1e-4)
        assert servers[1] == pytest.approx(5.0, abs=1e-3)

    def test_binding_capacity_has_positive_dual(self):
        instance = DSPPInstance(
            datacenters=("cheap", "dear"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.1]]),
            reconfiguration_weights=np.array([0.01, 0.01]),
            capacities=np.array([5.0, np.inf]),
            initial_state=np.zeros((2, 1)),
        )
        solution = solve_dspp(
            instance, np.full((1, 3), 100.0), np.tile([[1.0], [2.0]], (1, 3))
        )
        assert solution.capacity_duals[-1, 0] > 1e-4
        assert solution.capacity_duals[-1, 1] == pytest.approx(0.0, abs=1e-6)

    def test_reconfiguration_weight_slows_ramp_down(self):
        # Demand drops sharply; heavier c must leave more servers behind.
        demand = np.concatenate([np.full((1, 2), 100.0), np.full((1, 4), 10.0)], axis=1)
        prices = np.ones((1, 6))

        def _solve(c):
            instance = DSPPInstance(
                datacenters=("dc",),
                locations=("v",),
                sla_coefficients=np.array([[0.1]]),
                reconfiguration_weights=np.array([c]),
                capacities=np.array([np.inf]),
                initial_state=np.array([[10.0]]),
            )
            return solve_dspp(instance, demand, prices)

        light = _solve(0.01).trajectory.states[3, 0, 0]
        heavy = _solve(5.0).trajectory.states[3, 0, 0]
        assert heavy > light


class TestInfeasibility:
    def test_demand_over_capacity_raises(self, small_instance):
        demand = np.full((2, 3), 1e5)
        prices = np.ones((2, 3))
        with pytest.raises(DSPPInfeasibleError):
            solve_dspp(small_instance, demand, prices)

    def test_elastic_mode_stays_solvable(self, small_instance):
        demand = np.full((2, 3), 1e5)
        prices = np.ones((2, 3))
        solution = solve_dspp(
            small_instance, demand, prices, demand_slack_penalty=100.0
        )
        assert solution.demand_slack.sum() > 0
        # Capacity should be saturated before slack is used.
        per_dc = solution.trajectory.servers_per_datacenter()[-1]
        assert per_dc == pytest.approx(small_instance.capacities, rel=1e-3)


class TestElastic:
    def test_zero_slack_when_feasible(self, small_instance, small_demand, small_prices):
        solution = solve_dspp(
            small_instance, small_demand, small_prices, demand_slack_penalty=1e4
        )
        assert solution.demand_slack.sum() == pytest.approx(0.0, abs=1e-4)

    def test_objective_includes_penalty(self, small_instance):
        demand = np.full((2, 2), 1e5)
        prices = np.ones((2, 2))
        solution = solve_dspp(
            small_instance, demand, prices, demand_slack_penalty=50.0
        )
        assert solution.objective == pytest.approx(
            solution.costs.total + 50.0 * solution.demand_slack.sum(), rel=1e-6
        )


class TestWarmStart:
    def test_warm_start_helps_receding_solve(self, small_instance, small_demand, small_prices):
        first = solve_dspp(small_instance, small_demand, small_prices)
        shifted = small_demand * 1.02
        warm = solve_dspp(
            small_instance, shifted, small_prices, warm_start=first.qp
        )
        cold = solve_dspp(small_instance, shifted, small_prices)
        assert warm.qp.iterations <= cold.qp.iterations
        assert warm.objective == pytest.approx(cold.objective, rel=1e-4)
