"""Tests for the stacked QP assembly (repro.core.matrices)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrices import PairIndexer, build_stacked_qp
from repro.core.instance import DSPPInstance


@pytest.fixture
def instance():
    return DSPPInstance(
        datacenters=("dc0", "dc1"),
        locations=("v0", "v1"),
        sla_coefficients=np.array([[0.1, 0.2], [0.2, 0.1]]),
        reconfiguration_weights=np.array([2.0, 3.0]),
        capacities=np.array([40.0, 60.0]),
        initial_state=np.array([[1.0, 0.0], [0.0, 2.0]]),
    )


class TestPairIndexer:
    def test_layout(self):
        indexer = PairIndexer(2, 3, 4)
        assert indexer.pairs_per_step == 6
        assert indexer.num_variables == 48
        assert indexer.pair(1, 2) == 5
        assert indexer.x_index(0, 0, 0) == 0
        assert indexer.x_index(2, 1, 1) == 2 * 6 + 4
        assert indexer.u_index(0, 0, 0) == 24

    def test_elastic_layout(self):
        indexer = PairIndexer(2, 3, 4, elastic=True)
        assert indexer.num_variables == 48 + 12
        assert indexer.slack_index(0, 0) == 48
        assert indexer.slack_index(3, 2) == 48 + 11

    def test_slack_index_requires_elastic(self):
        with pytest.raises(ValueError, match="slack"):
            PairIndexer(1, 1, 1).slack_index(0, 0)

    def test_unstack_roundtrip(self):
        indexer = PairIndexer(2, 2, 3)
        z = np.arange(indexer.num_variables, dtype=float)
        x, u, w = indexer.unstack(z)
        assert x.shape == (3, 2, 2)
        assert u.shape == (3, 2, 2)
        assert w == pytest.approx(np.zeros((3, 2)))
        assert x[1, 0, 1] == z[indexer.x_index(1, 0, 1)]
        assert u[2, 1, 0] == z[indexer.u_index(2, 1, 0)]


class TestBuildStackedQP:
    def test_dimensions(self, instance):
        demand = np.ones((2, 3))
        prices = np.ones((2, 3))
        stacked = build_stacked_qp(instance, demand, prices)
        T, pairs = 3, 4
        n_vars = 2 * T * pairs
        assert stacked.P.shape == (n_vars, n_vars)
        # dynamics + demand + capacity + nonneg rows
        expected_rows = T * pairs + T * 2 + T * 2 + T * pairs
        assert stacked.A.shape == (expected_rows, n_vars)

    def test_quadratic_block_is_2r(self, instance):
        stacked = build_stacked_qp(instance, np.ones((2, 2)), np.ones((2, 2)))
        diag = stacked.P.diagonal()
        indexer = stacked.indexer
        assert diag[indexer.x_index(0, 0, 0)] == 0.0
        assert diag[indexer.u_index(0, 0, 0)] == pytest.approx(4.0)  # 2 * c_0
        assert diag[indexer.u_index(1, 1, 1)] == pytest.approx(6.0)  # 2 * c_1

    def test_linear_cost_is_price_per_dc(self, instance):
        prices = np.array([[1.0, 3.0], [2.0, 4.0]])
        stacked = build_stacked_qp(instance, np.ones((2, 2)), prices)
        indexer = stacked.indexer
        assert stacked.q[indexer.x_index(0, 0, 1)] == 1.0
        assert stacked.q[indexer.x_index(1, 0, 0)] == 3.0
        assert stacked.q[indexer.x_index(1, 1, 1)] == 4.0
        assert stacked.q[indexer.u_index(0, 0, 0)] == 0.0

    def test_dynamics_rhs_carries_initial_state(self, instance):
        stacked = build_stacked_qp(instance, np.ones((2, 2)), np.ones((2, 2)))
        pairs = 4
        assert stacked.l[:pairs] == pytest.approx(instance.initial_state.reshape(-1))
        assert stacked.u[:pairs] == pytest.approx(instance.initial_state.reshape(-1))
        # Later dynamic rows are homogeneous.
        assert stacked.l[pairs : 2 * pairs] == pytest.approx(np.zeros(pairs))

    def test_demand_rows_use_inverse_coefficients(self, instance):
        demand = np.array([[5.0, 6.0], [7.0, 8.0]])
        stacked = build_stacked_qp(instance, demand, np.ones((2, 2)))
        row = stacked.demand_row_offset  # (t=0, v=0)
        dense = stacked.A[row].toarray().ravel()
        indexer = stacked.indexer
        assert dense[indexer.x_index(0, 0, 0)] == pytest.approx(10.0)
        assert dense[indexer.x_index(0, 1, 0)] == pytest.approx(5.0)
        assert stacked.l[row] == 5.0
        assert stacked.u[row] == np.inf

    def test_unusable_pair_excluded_from_demand_row(self):
        coefficients = np.array([[0.1, np.inf], [0.2, 0.1]])
        instance = DSPPInstance(
            datacenters=("dc0", "dc1"),
            locations=("v0", "v1"),
            sla_coefficients=coefficients,
            reconfiguration_weights=np.ones(2),
            capacities=np.full(2, np.inf),
            initial_state=np.zeros((2, 2)),
        )
        stacked = build_stacked_qp(instance, np.ones((2, 1)), np.ones((2, 1)))
        row = stacked.demand_row_offset + 1  # (t=0, v=1)
        dense = stacked.A[row].toarray().ravel()
        assert dense[stacked.indexer.x_index(0, 0, 1)] == 0.0
        assert dense[stacked.indexer.x_index(0, 1, 1)] == pytest.approx(10.0)

    def test_capacity_rows_scaled_by_server_size(self, instance):
        import dataclasses

        sized = dataclasses.replace(instance, server_size=2.0)
        stacked = build_stacked_qp(sized, np.ones((2, 2)), np.ones((2, 2)))
        row = stacked.capacity_row_offset
        dense = stacked.A[row].toarray().ravel()
        indexer = stacked.indexer
        assert dense[indexer.x_index(0, 0, 0)] == 2.0
        assert dense[indexer.x_index(0, 0, 1)] == 2.0
        assert stacked.u[row] == 40.0

    def test_elastic_adds_slack_structure(self, instance):
        stacked = build_stacked_qp(
            instance, np.ones((2, 2)), np.ones((2, 2)), demand_slack_penalty=9.0
        )
        indexer = stacked.indexer
        assert indexer.elastic
        slack_index = indexer.slack_index(0, 0)
        assert stacked.q[slack_index] == 9.0
        row = stacked.demand_row_offset
        assert stacked.A[row].toarray().ravel()[slack_index] == 1.0

    def test_rejects_bad_penalty(self, instance):
        with pytest.raises(ValueError, match="penalty"):
            build_stacked_qp(
                instance, np.ones((2, 2)), np.ones((2, 2)), demand_slack_penalty=0.0
            )

    def test_rejects_shape_mismatches(self, instance):
        with pytest.raises(ValueError, match="demand"):
            build_stacked_qp(instance, np.ones((3, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError, match="prices"):
            build_stacked_qp(instance, np.ones((2, 2)), np.ones((2, 3)))

    def test_rejects_negative_inputs(self, instance):
        with pytest.raises(ValueError):
            build_stacked_qp(instance, -np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            build_stacked_qp(instance, np.ones((2, 2)), -np.ones((2, 2)))

    def test_capacity_duals_extraction(self, instance):
        stacked = build_stacked_qp(instance, np.ones((2, 2)), np.ones((2, 2)))
        y = np.zeros(stacked.A.shape[0])
        y[stacked.capacity_row_offset] = 3.0
        y[stacked.capacity_row_offset + 1] = -1.0  # clipped
        duals = stacked.capacity_duals(y)
        assert duals.shape == (2, 2)
        assert duals[0, 0] == 3.0
        assert duals[0, 1] == 0.0
