"""Tests for the deterministic sweep runner (repro.experiments.runner)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.experiments.fig9_horizon_cost_volatile import run_fig9
from repro.experiments.runner import derive_seed, resolve_jobs, run_sweep


@dataclass(frozen=True)
class _Spec:
    index: int
    base_seed: int


def _noisy_square(spec: _Spec) -> float:
    """Module-level worker: all randomness derived from the spec alone."""
    rng = np.random.default_rng(derive_seed(spec.base_seed, spec.index))
    return float(spec.index**2 + rng.standard_normal())


class TestResolveJobs:
    def test_none_and_one_mean_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_positive_taken_literally(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_distinct_across_indices_and_bases(self):
        seeds = {derive_seed(42, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_seed(42, 0) != derive_seed(43, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            derive_seed(42, -1)


class TestRunSweep:
    def test_serial_matches_parallel_bitwise(self):
        specs = [_Spec(index=i, base_seed=123) for i in range(8)]
        serial = run_sweep(_noisy_square, specs, jobs=1)
        parallel = run_sweep(_noisy_square, specs, jobs=2)
        assert serial == parallel  # exact float equality, not approx

    def test_results_in_spec_order(self):
        specs = [_Spec(index=i, base_seed=0) for i in range(6)]
        results = run_sweep(lambda s: s.index, specs, jobs=None)
        assert results == [s.index for s in specs]

    def test_empty_specs(self):
        assert run_sweep(_noisy_square, [], jobs=4) == []

    def test_jobs_capped_by_spec_count(self):
        # More workers than specs must not break anything.
        specs = [_Spec(index=0, base_seed=1)]
        assert len(run_sweep(_noisy_square, specs, jobs=8)) == 1


class TestFig9Parallel:
    def test_fig9_bit_identical_serial_vs_parallel(self):
        kwargs = dict(horizons=(1, 2), num_periods=6, num_seeds=1)
        serial = run_fig9(jobs=1, **kwargs)
        parallel = run_fig9(jobs=2, **kwargs)
        assert set(serial.series) == set(parallel.series)
        for key in serial.series:
            np.testing.assert_array_equal(serial.series[key], parallel.series[key])
