"""Final coverage batch: parameter validation of the experiment harnesses,
scenario edge cases, and cross-module invariants not pinned elsewhere."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dspp import solve_dspp
from repro.experiments.fig3_prices import run_fig3
from repro.experiments.fig5_price_response import FIG5_LATENCY_S
from repro.pricing.electricity import constant_price_trace
from repro.simulation.scenario import (
    PAPER_DATACENTER_CAPACITY,
    PAPER_DATACENTER_KEYS,
    Scenario,
    build_paper_scenario,
    build_small_scenario,
)
from repro.workload.demand import constant_demand


class TestScenarioValidation:
    def test_scenario_shape_checks(self):
        base = build_small_scenario(num_periods=4)
        with pytest.raises(ValueError, match="demand"):
            Scenario(
                instance=base.instance,
                demand=np.ones((99, 4)),
                prices=base.prices,
                latency=base.latency,
                sla=base.sla,
                vm_type=base.vm_type,
                wholesale_traces={},
            )
        with pytest.raises(ValueError, match="prices"):
            Scenario(
                instance=base.instance,
                demand=base.demand,
                prices=np.ones((99, 4)),
                latency=base.latency,
                sla=base.sla,
                vm_type=base.vm_type,
                wholesale_traces={},
            )

    def test_paper_constants(self):
        assert PAPER_DATACENTER_CAPACITY == 2000.0
        assert PAPER_DATACENTER_KEYS == (
            "san_jose_ca",
            "houston_tx",
            "atlanta_ga",
            "chicago_il",
        )

    def test_paper_scenario_rejects_short_horizon(self):
        with pytest.raises(ValueError):
            build_paper_scenario(num_periods=1)

    def test_custom_datacenter_subset(self):
        scenario = build_paper_scenario(
            num_periods=4,
            total_peak_rate=300.0,
            datacenter_keys=("houston_tx", "chicago_il"),
        )
        assert scenario.instance.num_datacenters == 2
        assert scenario.prices.shape == (2, 4)

    def test_mountain_view_attaches_at_san_jose(self):
        scenario = build_paper_scenario(
            num_periods=4,
            total_peak_rate=300.0,
            datacenter_keys=("mountain_view_ca",),
        )
        # MV has no POP of its own; it must still reach every city.
        assert np.all(np.isfinite(scenario.latency.latency_ms))

    def test_price_scale_is_linear(self):
        a = build_paper_scenario(num_periods=4, total_peak_rate=300.0, price_scale=1000.0)
        b = build_paper_scenario(num_periods=4, total_peak_rate=300.0, price_scale=2000.0)
        assert b.prices == pytest.approx(2.0 * a.prices)


class TestExperimentHarnessEdges:
    def test_fig3_custom_length_and_sites(self):
        result = run_fig3(num_hours=48, datacenters=("san_jose_ca", "dallas_tx"))
        assert result.x.shape == (48,)
        assert set(result.series) == {"san_jose_ca", "dallas_tx"}

    def test_fig5_latency_matrix_is_symmetric_roles(self):
        # Each region's nearest DC is its own (diagonal smallest per column).
        assert np.all(np.argmin(FIG5_LATENCY_S, axis=0) == np.arange(3))


class TestCrossModuleInvariants:
    def test_dspp_cost_monotone_in_prices(self, small_instance):
        demand = constant_demand([100.0, 120.0], 4).rates
        cheap = solve_dspp(small_instance, demand, np.full((2, 4), 1.0))
        dear = solve_dspp(small_instance, demand, np.full((2, 4), 2.0))
        assert dear.objective > cheap.objective

    def test_dspp_cost_monotone_in_demand(self, small_instance):
        prices = np.ones((2, 4))
        low = solve_dspp(small_instance, constant_demand([50.0, 60.0], 4).rates, prices)
        high = solve_dspp(small_instance, constant_demand([100.0, 120.0], 4).rates, prices)
        assert high.objective > low.objective

    def test_constant_price_trace_roundtrip_with_scenario_types(self):
        trace = constant_price_trace("flat", 2.0, 6)
        assert trace.scaled(3.0).prices == pytest.approx(np.full(6, 6.0))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2000),
    scale=st.floats(0.5, 3.0),
)
def test_dspp_objective_scales_with_prices(seed, scale):
    """Pure price scaling multiplies the optimal holding cost but leaves
    the optimal *allocation* unchanged when reconfiguration weights scale
    along (positive homogeneity of the LQ program)."""
    import dataclasses

    from repro.core.instance import DSPPInstance

    rng = np.random.default_rng(seed)
    instance = DSPPInstance(
        datacenters=("a", "b"),
        locations=("v0", "v1"),
        sla_coefficients=rng.uniform(0.05, 0.2, size=(2, 2)),
        reconfiguration_weights=rng.uniform(0.5, 2.0, size=2),
        capacities=np.full(2, np.inf),
        initial_state=np.zeros((2, 2)),
    )
    demand = rng.uniform(20.0, 80.0, size=(2, 3))
    prices = rng.uniform(0.5, 2.0, size=(2, 3))
    base = solve_dspp(instance, demand, prices)
    scaled_instance = dataclasses.replace(
        instance, reconfiguration_weights=instance.reconfiguration_weights * scale
    )
    scaled = solve_dspp(scaled_instance, demand, prices * scale)
    assert scaled.objective == pytest.approx(base.objective * scale, rel=1e-4)
    assert scaled.trajectory.states == pytest.approx(
        base.trajectory.states, abs=1e-3
    )
