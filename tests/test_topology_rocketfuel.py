"""Tests for repro.topology.rocketfuel."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topology.geo import ACCESS_CITIES
from repro.topology.rocketfuel import (
    build_tier1_backbone,
    parse_rocketfuel_weights,
)


class TestSyntheticBackbone:
    def test_default_backbone_is_connected(self):
        backbone = build_tier1_backbone()
        assert nx.is_connected(backbone.graph)
        assert backbone.num_pops == len(ACCESS_CITIES)

    def test_deterministic(self):
        a = build_tier1_backbone()
        b = build_tier1_backbone()
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_all_edges_have_positive_latency(self):
        backbone = build_tier1_backbone()
        for _, _, data in backbone.graph.edges(data=True):
            assert data["latency_ms"] > 0

    def test_latency_reflects_distance(self):
        backbone = build_tier1_backbone()
        # Coast-to-coast must be slower than a regional hop.
        coast = backbone.latency("new_york_ny", "san_francisco_ca")
        regional = backbone.latency("san_jose_ca", "san_francisco_ca")
        assert coast > regional

    def test_shortest_path_latency_symmetric(self):
        backbone = build_tier1_backbone()
        assert backbone.latency("houston_tx", "boston_ma") == pytest.approx(
            backbone.latency("boston_ma", "houston_tx")
        )

    def test_k_nearest_controls_density(self):
        sparse = build_tier1_backbone(k_nearest=1)
        dense = build_tier1_backbone(k_nearest=5)
        assert dense.num_links > sparse.num_links

    def test_small_city_set(self):
        backbone = build_tier1_backbone(cities=ACCESS_CITIES[:3], k_nearest=1)
        assert backbone.num_pops == 3
        assert nx.is_connected(backbone.graph)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_tier1_backbone(cities=ACCESS_CITIES[:1])
        with pytest.raises(ValueError):
            build_tier1_backbone(k_nearest=0)


class TestRocketfuelParser:
    def test_parse_valid_file(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("a b 10.5\nb c 2.0\n# comment\n\na c 30\n")
        backbone = parse_rocketfuel_weights(path)
        assert backbone.num_pops == 3
        assert backbone.num_links == 3
        assert backbone.latency("a", "c") == pytest.approx(12.5)  # via b

    def test_parse_rocketfuel_style_names(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("NewYork,NY Chicago,IL 20.0\nChicago,IL Seattle,WA 1.0\n")
        backbone = parse_rocketfuel_weights(path)
        assert backbone.num_pops == 3
        assert backbone.latency("NewYork,NY", "Seattle,WA") == pytest.approx(21.0)

    def test_hop_count_mode(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("a b 55\nb c 77\n")
        backbone = parse_rocketfuel_weights(path, weight_is_latency=False)
        assert backbone.latency("a", "c") == pytest.approx(2.0)

    def test_rejects_bad_weight(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("a b notanumber\n")
        with pytest.raises(ValueError, match="bad weight"):
            parse_rocketfuel_weights(path)

    def test_rejects_nonpositive_weight(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("a b 0\n")
        with pytest.raises(ValueError, match="positive"):
            parse_rocketfuel_weights(path)

    def test_rejects_short_line(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("justonetoken\n")
        with pytest.raises(ValueError):
            parse_rocketfuel_weights(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("# only comments\n")
        with pytest.raises(ValueError, match="no edges"):
            parse_rocketfuel_weights(path)

    def test_disconnected_file_rejected_by_validate(self, tmp_path):
        path = tmp_path / "weights"
        path.write_text("a b 1\nc d 1\n")
        with pytest.raises(ValueError, match="connected"):
            parse_rocketfuel_weights(path)
