"""Tests for the quota coordinator (repro.solvers.dual)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.dual import QuotaCoordinator


class TestConstruction:
    def test_initial_quotas_are_equal_split(self):
        coordinator = QuotaCoordinator(np.array([90.0, 30.0]), n_providers=3)
        assert coordinator.quotas == pytest.approx(
            np.array([[30.0, 10.0]] * 3)
        )

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            QuotaCoordinator(np.array([0.0]), n_providers=1)

    def test_rejects_zero_providers(self):
        with pytest.raises(ValueError, match="provider"):
            QuotaCoordinator(np.array([1.0]), n_providers=0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            QuotaCoordinator(np.array([1.0]), 1, mode="other")

    def test_quotas_view_is_readonly(self):
        coordinator = QuotaCoordinator(np.array([10.0]), 2)
        with pytest.raises(ValueError):
            coordinator.quotas[0, 0] = 99.0


class TestUpdate:
    def test_zero_duals_keep_split(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2)
        update = coordinator.update(np.zeros((2, 1)))
        assert update.quotas == pytest.approx(np.array([[50.0], [50.0]]))
        assert update.max_change == pytest.approx(0.0)

    def test_higher_dual_wins_capacity(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2, step_size=10.0)
        update = coordinator.update(np.array([[5.0], [1.0]]))
        assert update.quotas[0, 0] > update.quotas[1, 0]
        assert update.quotas[:, 0].sum() == pytest.approx(100.0)

    def test_negative_duals_clipped(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2)
        update = coordinator.update(np.array([[-5.0], [0.0]]))
        assert update.quotas[:, 0].sum() == pytest.approx(100.0)
        # Clipped negative behaves like zero: equal split preserved.
        assert update.quotas[0, 0] == pytest.approx(50.0)

    def test_shape_mismatch_raises(self):
        coordinator = QuotaCoordinator(np.array([100.0, 50.0]), 2)
        with pytest.raises(ValueError, match="shape"):
            coordinator.update(np.zeros((3, 2)))

    def test_simplex_mode_also_preserves_capacity(self):
        coordinator = QuotaCoordinator(
            np.array([100.0, 40.0]), 3, step_size=5.0, mode="simplex"
        )
        update = coordinator.update(np.abs(np.random.default_rng(0).normal(size=(3, 2))))
        assert update.quotas.sum(axis=0) == pytest.approx([100.0, 40.0])
        assert np.all(update.quotas >= -1e-12)

    def test_reset_restores_equal_split(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2, step_size=10.0)
        coordinator.update(np.array([[5.0], [0.0]]))
        coordinator.reset()
        assert coordinator.quotas == pytest.approx(np.array([[50.0], [50.0]]))


class TestEdgeCases:
    def test_all_zero_dual_round_renormalizes_without_nan(self):
        """A round where nobody reports scarcity must keep the quota matrix
        finite and capacity-preserving — including when some provider sits
        at an exact-zero quota (column renormalization divides by sums that
        the zero rows do not inflate)."""
        coordinator = QuotaCoordinator(np.array([100.0, 40.0]), 3)
        coordinator.set_quotas(
            np.array([[100.0, 0.0], [0.0, 20.0], [0.0, 20.0]])
        )
        update = coordinator.update(np.zeros((3, 2)))
        assert np.all(np.isfinite(update.quotas))
        assert update.quotas.sum(axis=0) == pytest.approx([100.0, 40.0])
        assert update.quotas == pytest.approx(
            np.array([[100.0, 0.0], [0.0, 20.0], [0.0, 20.0]])
        )
        assert update.max_change == pytest.approx(0.0)

    def test_zero_quota_provider_stays_pinned_under_zero_dual(self):
        """A provider at zero quota that reports no scarcity stays at zero:
        the multiplicative update cannot create share from nothing."""
        coordinator = QuotaCoordinator(np.array([60.0]), 2, step_size=5.0)
        coordinator.set_quotas(np.array([[60.0], [0.0]]))
        for _ in range(3):
            update = coordinator.update(np.array([[2.0], [0.0]]))
        assert update.quotas[1, 0] == pytest.approx(0.0)
        assert update.quotas[0, 0] == pytest.approx(60.0)

    def test_zero_quota_provider_escapes_via_positive_dual(self):
        """The additive ascent term lets a pinned provider claim capacity
        back as soon as it reports a binding constraint."""
        coordinator = QuotaCoordinator(np.array([60.0]), 2, step_size=5.0)
        coordinator.set_quotas(np.array([[60.0], [0.0]]))
        update = coordinator.update(np.array([[0.0], [3.0]]))
        assert update.quotas[1, 0] > 0.0
        assert update.quotas[:, 0].sum() == pytest.approx(60.0)

    def test_single_provider_always_owns_full_capacity(self):
        """With one provider the renormalization is the identity onto the
        physical capacity, whatever the duals say."""
        capacity = np.array([80.0, 20.0, 5.0])
        coordinator = QuotaCoordinator(capacity, 1, step_size=7.0)
        for duals in (np.zeros((1, 3)), np.array([[9.0, 0.0, 123.0]])):
            update = coordinator.update(duals)
            assert update.quotas == pytest.approx(capacity[None, :])

    def test_single_provider_game_reduces_to_plain_solve(self):
        """compute_equilibrium with N=1 is exactly one provider solving its
        own DSPP at the full physical capacity."""
        from repro.core.dspp import solve_dspp
        from repro.game.best_response import (
            BestResponseConfig,
            compute_equilibrium,
        )
        from repro.game.players import random_providers

        rng = np.random.default_rng(7)
        provider = random_providers(
            1,
            ("dc0", "dc1"),
            ("v0", "v1", "v2"),
            rng.uniform(10.0, 60.0, size=(2, 3)),
            horizon=3,
            rng=rng,
        )[0]
        capacity = np.full(2, 1.5 * float(provider.servers_demanded().max()) / 2)
        config = BestResponseConfig(reuse_workspaces=False)
        result = compute_equilibrium([provider], capacity, config)
        direct = solve_dspp(
            provider.instance.with_capacities(capacity),
            provider.demand,
            provider.prices,
            demand_slack_penalty=config.slack_penalty,
        )
        assert result.quotas == pytest.approx(capacity[None, :])
        assert result.total_cost == direct.objective
        assert np.array_equal(
            result.solutions[0].trajectory.states, direct.trajectory.states
        )


@settings(max_examples=40, deadline=None)
@given(
    n_providers=st.integers(1, 6),
    n_dcs=st.integers(1, 4),
    step=st.floats(0.01, 20.0),
    seed=st.integers(0, 10_000),
    rounds=st.integers(1, 5),
)
def test_capacity_conservation_invariant(n_providers, n_dcs, step, seed, rounds):
    """Per-DC quotas always sum to the physical capacity, in both modes."""
    rng = np.random.default_rng(seed)
    capacity = rng.uniform(10.0, 500.0, size=n_dcs)
    for mode in ("normalize", "simplex"):
        coordinator = QuotaCoordinator(
            capacity, n_providers, step_size=step, mode=mode
        )
        for _ in range(rounds):
            duals = rng.exponential(scale=3.0, size=(n_providers, n_dcs))
            update = coordinator.update(duals)
            assert update.quotas.sum(axis=0) == pytest.approx(capacity, rel=1e-9)
            assert np.all(update.quotas >= -1e-9)
