"""Column sparsification, the Krylov backend and their supporting caches.

Covers the contract surface the differentials cannot see directly:
memoization identity on :class:`~repro.core.instance.DSPPInstance`,
fingerprint separation between the dense and reduced layouts, the
``sparsify_columns="on"`` exactness guard, exact zeros in the unstacked
trajectory, the mixed-precision fall-back path and the equilibration
reuse counter.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.solvers.banded as banded
from repro.core.dspp import DSPPWorkspace, solve_dspp
from repro.core.instance import DSPPInstance
from repro.core.matrices import resolve_sparsify, structure_fingerprint
from repro.solvers.qp import QPSettings


@pytest.fixture
def pruned_instance() -> DSPPInstance:
    """3 data centers x 4 locations with 5 of 12 pairs SLA-unusable."""
    sla = np.array(
        [
            [0.02, np.inf, 0.05, np.inf],
            [np.inf, 0.03, 0.04, 0.02],
            [0.05, 0.02, np.inf, np.inf],
        ]
    )
    state = np.where(np.isfinite(sla), 1.5, 0.0)
    return DSPPInstance(
        datacenters=("dc0", "dc1", "dc2"),
        locations=("v0", "v1", "v2", "v3"),
        sla_coefficients=sla,
        reconfiguration_weights=np.array([1.0, 2.0, 0.5]),
        capacities=np.array([80.0, 120.0, 60.0]),
        initial_state=state,
    )


def _forecasts(instance, horizon, rng):
    demand = rng.uniform(0.5, 1.0, (instance.num_locations, horizon)) * (
        instance.max_supportable_demand()[:, None] / (2 * instance.num_locations)
    )
    prices = rng.uniform(0.5, 2.0, (instance.num_datacenters, horizon))
    return demand, prices


class TestInstanceMemoization:
    def test_demand_coefficients_identity(self, pruned_instance):
        first = pruned_instance.demand_coefficients
        assert pruned_instance.demand_coefficients is first
        assert not first.flags.writeable

    def test_usable_pairs_identity(self, pruned_instance):
        first = pruned_instance.usable_pairs
        assert pruned_instance.usable_pairs is first
        assert not first.flags.writeable
        np.testing.assert_array_equal(
            first, np.isfinite(pruned_instance.sla_coefficients)
        )

    def test_memos_propagate_through_vector_copies(self, pruned_instance):
        coeff = pruned_instance.demand_coefficients
        usable = pruned_instance.usable_pairs
        moved = pruned_instance.with_capacities(pruned_instance.capacities * 1.1)
        assert moved.demand_coefficients is coeff
        assert moved.usable_pairs is usable
        advanced = moved.with_initial_state(moved.initial_state * 0.5)
        assert advanced.demand_coefficients is coeff
        assert advanced.usable_pairs is usable


class TestFingerprintAndResolve:
    def test_fingerprint_separates_layouts(self, pruned_instance):
        dense = structure_fingerprint(pruned_instance, 3, False, sparsify=False)
        reduced = structure_fingerprint(pruned_instance, 3, False, sparsify=True)
        assert dense != reduced

    def test_resolve_modes(self, pruned_instance, small_instance):
        assert resolve_sparsify(pruned_instance, "auto") is True
        assert resolve_sparsify(pruned_instance, "on") is True
        assert resolve_sparsify(pruned_instance, "off") is False
        # All pairs usable: nothing to prune, even when forced on.
        assert resolve_sparsify(small_instance, "auto") is False
        assert resolve_sparsify(small_instance, "on") is False

    def test_on_rejects_nonzero_pruned_state(self, pruned_instance):
        bad_state = pruned_instance.initial_state.copy()
        bad_state[~pruned_instance.usable_pairs] = 0.25
        bad = pruned_instance.with_initial_state(bad_state)
        with pytest.raises(ValueError, match="sparsify"):
            resolve_sparsify(bad, "on")
        # "auto" declines silently instead of raising.
        assert resolve_sparsify(bad, "auto") is False

    def test_solve_surfaces_the_guard(self, pruned_instance, rng):
        bad_state = pruned_instance.initial_state.copy()
        bad_state[~pruned_instance.usable_pairs] = 0.25
        bad = pruned_instance.with_initial_state(bad_state)
        demand, prices = _forecasts(bad, 3, rng)
        with pytest.raises(ValueError, match="sparsify"):
            solve_dspp(bad, demand, prices, settings=QPSettings(sparsify_columns="on"))


class TestSparsifiedSolutions:
    def test_pruned_pairs_are_exact_zeros(self, pruned_instance, rng):
        demand, prices = _forecasts(pruned_instance, 4, rng)
        solution = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(early_polish=True, sparsify_columns="on"),
        )
        unusable = ~pruned_instance.usable_pairs
        assert np.count_nonzero(solution.trajectory.states[:, unusable]) == 0
        assert np.count_nonzero(solution.trajectory.controls[:, unusable]) == 0

    def test_matches_dense_objective(self, pruned_instance, rng):
        demand, prices = _forecasts(pruned_instance, 4, rng)
        dense = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(early_polish=True, sparsify_columns="off"),
        )
        reduced = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(early_polish=True, sparsify_columns="on"),
        )
        assert reduced.objective == pytest.approx(dense.objective, rel=1e-9, abs=1e-9)


class TestMixedPrecision:
    def test_requires_krylov_backend(self):
        with pytest.raises(ValueError, match="krylov"):
            QPSettings(kkt_backend="banded", mixed_precision=True)

    def test_certificate_failure_falls_back_to_float64(
        self, pruned_instance, rng, monkeypatch
    ):
        # An impossible certificate forces the fall-back on the very first
        # solve; the result must come from the recovered float64 path.
        monkeypatch.setattr(banded, "_MIXED_CERT_TOL", -1.0)
        demand, prices = _forecasts(pruned_instance, 3, rng)
        reference = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(early_polish=True, kkt_backend="banded"),
        )
        ws = DSPPWorkspace()
        mixed = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(
                early_polish=True,
                kkt_backend="krylov",
                sparsify_columns="on",
                mixed_precision=True,
            ),
            workspace=ws,
        )
        solver = ws._qp._lu
        assert isinstance(solver, banded.BandedKKTSolver)
        assert solver.precision_fallbacks >= 1
        assert not solver._mixed_active
        assert mixed.objective == pytest.approx(
            reference.objective, rel=1e-9, abs=1e-9
        )

    def test_certificate_pass_keeps_float32_active(self, pruned_instance, rng):
        demand, prices = _forecasts(pruned_instance, 3, rng)
        ws = DSPPWorkspace()
        mixed = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(
                early_polish=True,
                kkt_backend="krylov",
                sparsify_columns="on",
                mixed_precision=True,
            ),
            workspace=ws,
        )
        reference = solve_dspp(
            pruned_instance,
            demand,
            prices,
            settings=QPSettings(early_polish=True, kkt_backend="banded"),
        )
        solver = ws._qp._lu
        assert solver.precision_fallbacks == 0
        assert solver._mixed_active
        assert mixed.objective == pytest.approx(
            reference.objective, rel=1e-8, abs=1e-8
        )


class TestEquilibrationReuse:
    def test_repeat_setup_with_same_matrices_skips_ruiz(self, pruned_instance, rng):
        ws = DSPPWorkspace()
        demand, prices = _forecasts(pruned_instance, 3, rng)
        solve_dspp(pruned_instance, demand, prices, workspace=ws)
        assert ws._qp.num_equilibrations == 1
        # Vector-only updates ride the cached scaling.
        demand2, prices2 = _forecasts(pruned_instance, 3, rng)
        solve_dspp(pruned_instance, demand2, prices2, workspace=ws)
        assert ws._qp.num_equilibrations == 1
        # A forced structural rebuild with bit-identical (P, A) also reuses
        # the scaling: only the vectors are rescaled.
        setups_before = ws._qp.num_setups
        ws._structure = None
        solve_dspp(pruned_instance, demand2, prices2, workspace=ws)
        assert ws._qp.num_setups == setups_before + 1
        assert ws._qp.num_equilibrations == 1

    def test_different_structure_reequilibrates(self, pruned_instance, rng):
        ws = DSPPWorkspace()
        demand, prices = _forecasts(pruned_instance, 3, rng)
        solve_dspp(pruned_instance, demand, prices, workspace=ws)
        demand4, prices4 = _forecasts(pruned_instance, 4, rng)
        solve_dspp(pruned_instance, demand4, prices4, workspace=ws)
        assert ws._qp.num_equilibrations == 2
