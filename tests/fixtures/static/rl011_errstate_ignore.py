"""Fixture: RL011 must flag numpy error-state suppression outside the
sanitizer module."""

import numpy as np

__all__ = ["silent_divide"]


def silent_divide(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Silencing divide warnings hides real faults."""
    with np.errstate(divide="ignore"):
        return num / np.where(den == 0.0, 1.0, den)  # reprolint: disable=RL004, RL007
