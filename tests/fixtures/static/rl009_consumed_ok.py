"""Fixture: bound or explicitly discarded solve results must pass RL009."""

from typing import Any

__all__ = ["bound_result", "explicit_discard"]


def bound_result(solver: Any, rhs: Any) -> Any:
    """The result is bound and returned."""
    solution = solver.solve(rhs)
    return solution


def explicit_discard(solver: Any, rhs: Any) -> None:
    """Assigning to ``_`` documents the intentional discard."""
    _ = solver.solve(rhs)
