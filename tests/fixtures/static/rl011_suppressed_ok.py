"""Fixture: a justified per-line suppression silences RL011."""

import numpy as np

__all__ = ["deliberate"]


def deliberate(num: np.ndarray) -> np.ndarray:
    """A reviewed, documented suppression is allowed."""
    with np.errstate(over="ignore"):  # reprolint: disable=RL011 — overflow saturates by design
        return np.exp(num)
