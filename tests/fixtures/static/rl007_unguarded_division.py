"""Fixture: RL007 must flag an unguarded division in a solver module."""

import numpy as np

__all__ = ["bad_ratio"]


def bad_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Divide by a denominator that is never clamped or branched on."""
    return num / den
