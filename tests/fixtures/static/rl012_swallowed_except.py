"""Fixture: RL012 must flag broad handlers that swallow supervision errors."""

__all__ = ["supervise"]


def supervise(steps: list[object]) -> int:
    """A failed step disappears — the outage is invisible."""
    completed = 0
    for step in steps:
        try:
            step()  # type: ignore[operator]
            completed += 1
        except Exception:
            completed += 0
    return completed
