"""Fixture: SF002 must flag call sites that provably violate a contract."""

import numpy as np

from repro.contracts import check_shapes

__all__ = ["norm", "wrong_rank", "wrong_literal", "pair_cost", "conflicting_sizes"]


@check_shapes("v:(n,)", ret="()")
def norm(v: np.ndarray) -> float:
    """Contracted 1-d consumer."""
    return float(np.sqrt(v @ v))


def wrong_rank() -> float:
    """Passes a matrix where the contract demands a vector."""
    grid = np.zeros((3, 4))
    return norm(grid)


@check_shapes("p:(3,)")
def three_only(p: np.ndarray) -> float:
    """Contracted fixed-size consumer."""
    return float(p[0] + p[1] + p[2])


def wrong_literal() -> float:
    """Passes a 5-vector where exactly 3 entries are required."""
    point = np.zeros(5)
    return three_only(point)


@check_shapes("a:(k,)", "b:(k,)")
def pair_cost(a: np.ndarray, b: np.ndarray) -> float:
    """Both arguments must share one length ``k``."""
    return float(a @ b)


def conflicting_sizes() -> float:
    """Binds ``k`` to 2 and 6 within a single call."""
    left = np.zeros(2)
    right = np.zeros(6)
    return pair_cost(left, right)
