"""Fixture: SF005 must flag locally impossible shape combinations."""

import numpy as np

__all__ = ["bad_matmul", "bad_concat"]


def bad_matmul() -> np.ndarray:
    """Inner dimensions 3 and 4 can never agree."""
    left = np.zeros((2, 3))
    right = np.zeros((4, 5))
    return left @ right


def bad_concat() -> np.ndarray:
    """Concatenating a vector with a matrix has no consistent rank."""
    flat = np.zeros(4)
    grid = np.zeros((2, 2))
    return np.concatenate([flat, grid])
