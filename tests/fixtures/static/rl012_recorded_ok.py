"""Fixture: broad handlers that record to the degradation log pass RL012."""

__all__ = ["supervise"]


def supervise(steps: list[object], log: object) -> int:
    """Every failure lands in the degradation log before the loop moves on."""
    completed = 0
    for period, step in enumerate(steps):
        try:
            step()  # type: ignore[operator]
            completed += 1
        except Exception as exc:
            log.record(period, "service", "error", repr(exc))  # type: ignore[attr-defined]
    return completed
