"""Fixture: SF003 must flag two contracts that cannot both hold."""

import numpy as np

from repro.contracts import check_shapes

__all__ = ["inner", "outer"]


@check_shapes("a:(k,)", "b:(k,)")
def inner(a: np.ndarray, b: np.ndarray) -> float:
    """Declares both arguments the same length."""
    return float(a @ b)


@check_shapes("x:(n,)", "y:(m,)")
def outer(x: np.ndarray, y: np.ndarray) -> float:
    """Declares independent lengths, then forwards both to ``inner`` —
    the two contracts disagree about ``k``."""
    return inner(x, y)
