"""Fixture: handlers that re-raise or substitute a fallback pass RL010."""

import numpy as np

__all__ = ["checked_sum"]


def checked_sum(batches: list[np.ndarray]) -> float:
    """Failures surface as a documented sentinel, not silence."""
    total = 0.0
    for batch in batches:
        try:
            total += float(np.sum(batch))
        except ValueError as exc:
            raise RuntimeError(f"bad batch: {exc}") from exc
    return total
