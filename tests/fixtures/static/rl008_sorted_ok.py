"""Fixture: sorted directory scans and fixed seeds must pass RL008."""

import os

import numpy as np

__all__ = ["scan_dir", "fixed_seeded"]


def scan_dir(root: str) -> list[str]:
    """Sorting restores a deterministic order."""
    return sorted(os.listdir(root))


def fixed_seeded(seed: int) -> np.random.Generator:
    """An injected integer seed is reproducible."""
    return np.random.default_rng(seed)
