"""Fixture: SF004 must flag a public solver function without a contract."""

import numpy as np

__all__ = ["uncontracted"]


def uncontracted(v: np.ndarray, scale: float) -> np.ndarray:
    """Array in, array out, no @check_shapes anywhere."""
    return scale * v
