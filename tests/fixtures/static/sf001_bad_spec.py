"""Fixture: SF001 must flag malformed and impossible contract specs."""

import numpy as np

from repro.contracts import check_shapes

__all__ = ["malformed", "unknown_param"]


@check_shapes("v:(n n)")
def malformed(v: np.ndarray) -> float:
    """The spec is missing the comma between dimensions."""
    return float(np.sum(v))


@check_shapes("w:(n,)")
def unknown_param(v: np.ndarray) -> float:
    """The spec names a parameter the function does not have."""
    return float(np.sum(v))
