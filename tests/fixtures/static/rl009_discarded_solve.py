"""Fixture: RL009 must flag a solve whose result is silently dropped."""

from typing import Any

__all__ = ["fire_and_forget"]


def fire_and_forget(solver: Any, rhs: Any) -> None:
    """The status/result of the solve is never consumed."""
    solver.solve(rhs)
