"""Fixture: a justified shapeflow suppression silences SF004."""

import numpy as np

__all__ = ["exempt"]


def exempt(v: np.ndarray) -> np.ndarray:  # shapeflow: disable=SF004 — shape-polymorphic helper
    """Works on any rank by design, so a shape contract cannot apply."""
    return np.abs(v)
