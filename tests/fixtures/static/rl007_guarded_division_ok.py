"""Fixture: clamped, branched and constant denominators must pass RL007."""

import numpy as np

__all__ = ["clamped_ratio", "branched_ratio", "halved"]

_EPS = 1e-12


def clamped_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """A ``np.maximum`` clamp is the canonical zero-guard."""
    return num / np.maximum(den, _EPS)


def branched_ratio(num: float, den: float) -> float:
    """Branching on the denominator counts as a guard."""
    if den == 0.0:  # reprolint: disable=RL004
        return 0.0
    return num / den


def halved(num: np.ndarray) -> np.ndarray:
    """Positive literal denominators are trivially safe."""
    return num / 2.0
