"""Fixture: RL010 must flag swallow-and-continue around numeric work."""

import numpy as np

__all__ = ["lossy_sum"]


def lossy_sum(batches: list[np.ndarray]) -> float:
    """Errors in a batch vanish without a trace."""
    total = 0.0
    for batch in batches:
        try:
            total += float(np.sum(batch))
        except ValueError:
            continue
    return total
