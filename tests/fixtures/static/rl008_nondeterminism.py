"""Fixture: RL008 must flag iteration-order and wall-clock nondeterminism."""

import os
import time

import numpy as np

__all__ = ["iterate_set", "scan_dir", "clock_seeded"]


def iterate_set() -> list[int]:
    """Set iteration order varies across processes."""
    out: list[int] = []
    for item in {3, 1, 2}:
        out.append(item)
    return out


def scan_dir(root: str) -> list[str]:
    """``os.listdir`` order is filesystem-dependent."""
    return [name for name in os.listdir(root)]


def clock_seeded() -> np.random.Generator:
    """Wall-clock seeds make every run unreproducible."""
    return np.random.default_rng(int(time.time()))
