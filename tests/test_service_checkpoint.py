"""Tests for the checkpoint layer (repro.service.checkpoint)."""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest

from repro.control.mpc import MPCConfig, MPCController
from repro.prediction.naive import LastValuePredictor
from repro.service.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointNotFoundError,
    CheckpointVersionError,
    checkpoint_path,
    list_checkpoints,
    load_checkpoint,
    load_latest,
    write_checkpoint,
)
from repro.simulation.scenario import build_small_scenario

HEADER_SIZE = struct.calcsize("<8sIQ32s")


def _stepped_controller(num_steps: int = 3) -> MPCController:
    """A controller mid-run, with warm workspace and predictor history."""
    scenario = build_small_scenario(num_periods=num_steps + 3, seed=7)
    instance = scenario.instance
    controller = MPCController(
        instance,
        LastValuePredictor(instance.num_locations),
        LastValuePredictor(instance.num_datacenters),
        MPCConfig(window=2, slack_penalty=1e3, reuse_workspace=True),
    )
    for k in range(num_steps):
        controller.step(scenario.demand[:, k], scenario.prices[:, k])
    return controller


class TestFileFormat:
    def test_write_then_load_round_trips(self, tmp_path):
        payload = {"period": 4, "blob": np.arange(12.0).reshape(3, 4)}
        path = write_checkpoint(tmp_path, 4, payload)
        assert path == checkpoint_path(tmp_path, 4)
        loaded = load_checkpoint(path)
        assert loaded["period"] == 4
        assert np.array_equal(loaded["blob"], payload["blob"])

    def test_no_temporary_file_left_behind(self, tmp_path):
        write_checkpoint(tmp_path, 0, {"x": 1})
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".")]
        assert leftovers == []

    def test_missing_file_raises_not_found(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            load_checkpoint(tmp_path / "ckpt-00000000.bin")

    def test_bad_magic_raises_base_error(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, {"x": 1})
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTACKPT"
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_future_version_raises_typed_error(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, {"x": 1})
        raw = bytearray(path.read_bytes())
        struct.pack_into("<I", raw, 8, CHECKPOINT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointVersionError, match="version"):
            load_checkpoint(path)

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, {"x": list(range(100))})
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 5] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_checkpoint(path)

    def test_truncated_payload_detected(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, {"x": list(range(100))})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])
        with pytest.raises(CheckpointCorruptError, match="bytes"):
            load_checkpoint(path)

    def test_truncated_inside_header_detected(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, {"x": 1})
        path.write_bytes(path.read_bytes()[: HEADER_SIZE - 3])
        with pytest.raises(CheckpointCorruptError, match="header"):
            load_checkpoint(path)

    def test_magic_constant_is_stable(self):
        # Part of the on-disk contract documented in docs/OPERATIONS.md.
        assert CHECKPOINT_MAGIC == b"DSPPCKPT"
        assert CHECKPOINT_VERSION == 1


class TestGenerations:
    def test_keep_prunes_oldest_generations(self, tmp_path):
        for period in range(6):
            write_checkpoint(tmp_path, period, {"period": period}, keep=3)
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == ["ckpt-00000003.bin", "ckpt-00000004.bin", "ckpt-00000005.bin"]

    def test_load_latest_returns_newest(self, tmp_path):
        for period in range(4):
            write_checkpoint(tmp_path, period, {"period": period})
        snapshot, path, skipped = load_latest(tmp_path)
        assert snapshot["period"] == 3
        assert path.name == "ckpt-00000003.bin"
        assert skipped == []

    def test_load_latest_falls_back_past_corruption_loudly(self, tmp_path):
        for period in range(3):
            write_checkpoint(tmp_path, period, {"period": period})
        newest = checkpoint_path(tmp_path, 2)
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        snapshot, path, skipped = load_latest(tmp_path)
        assert snapshot["period"] == 1
        assert [p.name for p in skipped] == ["ckpt-00000002.bin"]

    def test_load_latest_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            load_latest(tmp_path)

    def test_load_latest_all_corrupt_raises_and_names_files(self, tmp_path):
        path = write_checkpoint(tmp_path, 0, {"x": 1})
        path.write_bytes(path.read_bytes()[: HEADER_SIZE + 2])
        with pytest.raises(CheckpointNotFoundError, match="ckpt-00000000.bin"):
            load_latest(tmp_path)

    def test_version_mismatch_stops_fallback(self, tmp_path):
        """An incompatible version is an operator problem, not bit rot."""
        write_checkpoint(tmp_path, 0, {"x": 1})
        newest = write_checkpoint(tmp_path, 1, {"x": 2})
        raw = bytearray(newest.read_bytes())
        struct.pack_into("<I", raw, 8, CHECKPOINT_VERSION + 9)
        newest.write_bytes(bytes(raw))
        with pytest.raises(CheckpointVersionError):
            load_latest(tmp_path)


class TestControllerSnapshotDeterminism:
    """The core crash-recovery invariant, at the controller level."""

    def test_snapshot_restore_snapshot_is_byte_identical(self):
        controller = _stepped_controller()
        first = pickle.dumps(controller, protocol=4)
        second = pickle.dumps(pickle.loads(first), protocol=4)
        assert first == second

    def test_restored_controller_continues_bitwise(self):
        scenario = build_small_scenario(num_periods=8, seed=13)
        instance = scenario.instance
        controller = MPCController(
            instance,
            LastValuePredictor(instance.num_locations),
            LastValuePredictor(instance.num_datacenters),
            MPCConfig(window=3, slack_penalty=1e3, reuse_workspace=True),
        )
        for k in range(3):
            controller.step(scenario.demand[:, k], scenario.prices[:, k])
        clone = pickle.loads(pickle.dumps(controller, protocol=4))
        for k in range(3, 7):
            a = controller.step(scenario.demand[:, k], scenario.prices[:, k])
            b = clone.step(scenario.demand[:, k], scenario.prices[:, k])
            assert np.array_equal(a.new_state, b.new_state)
            assert np.array_equal(a.applied_control, b.applied_control)
