"""Tests for the figure-reproduction CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_figure_flags(self):
        args = build_parser().parse_args(["fig7", "--max-players", "4", "--seed", "2"])
        assert args.max_players == 4
        assert args.seed == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11"])


class TestMain:
    def test_list_prints_every_figure(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"):
            assert name in out

    def test_fig3_runs_and_passes(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_fig4_respects_hours_flag(self, capsys):
        assert main(["fig4", "--hours", "24"]) == 0
        out = capsys.readouterr().out
        assert "servers_mpc" in out


class TestReportCommand:
    def test_parser_wiring(self):
        args = build_parser().parse_args(["report", "--out", "X.md", "--full"])
        assert args.command == "report"
        assert args.out == "X.md"
        assert args.full is True

    def test_report_writes_file(self, tmp_path, monkeypatch):
        # Patch the figure runners so the command is fast; the real runs
        # are covered by the benchmark suite.
        import numpy as np

        import repro.report as report_module
        from repro.experiments.common import FigureResult

        def fake_runs(options):
            return [
                lambda: FigureResult(
                    figure="figX",
                    title="stub",
                    x_label="k",
                    x=np.array([1, 2]),
                    series={"y": np.array([1.0, 2.0])},
                    checks={"ok": True},
                )
            ]

        monkeypatch.setattr(report_module, "_figure_runs", fake_runs)
        out = tmp_path / "R.md"
        assert main(["report", "--out", str(out)]) == 0
        text = out.read_text()
        assert "figX" in text
        assert "All shape checks passed" in text

    def test_report_exit_code_on_failure(self, tmp_path, monkeypatch):
        import numpy as np

        import repro.report as report_module
        from repro.experiments.common import FigureResult

        def fake_runs(options):
            return [
                lambda: FigureResult(
                    figure="figX",
                    title="stub",
                    x_label="k",
                    x=np.array([1]),
                    series={"y": np.array([1.0])},
                    checks={"broken": False},
                )
            ]

        monkeypatch.setattr(report_module, "_figure_runs", fake_runs)
        out = tmp_path / "R.md"
        assert main(["report", "--out", str(out)]) == 1
        assert "FAILED" in out.read_text()
