"""Tests for repro.topology.geo."""

from __future__ import annotations

import pytest

from repro.topology.geo import (
    ACCESS_CITIES,
    DATACENTER_SITES,
    City,
    find_city,
    great_circle_km,
    propagation_delay_ms,
)


class TestCityData:
    def test_paper_has_24_access_cities(self):
        assert len(ACCESS_CITIES) == 24

    def test_paper_datacenter_sites_present(self):
        keys = {city.key for city in DATACENTER_SITES}
        for expected in (
            "san_jose_ca",
            "mountain_view_ca",
            "dallas_tx",
            "houston_tx",
            "atlanta_ga",
            "chicago_il",
        ):
            assert expected in keys

    def test_city_keys_unique(self):
        keys = [city.key for city in ACCESS_CITIES]
        assert len(keys) == len(set(keys))

    def test_populations_positive(self):
        assert all(city.population > 0 for city in ACCESS_CITIES)

    def test_coordinates_in_continental_us(self):
        for city in (*ACCESS_CITIES, *DATACENTER_SITES):
            assert 24.0 < city.latitude < 50.0
            assert -125.0 < city.longitude < -66.0

    def test_utc_offsets_sane(self):
        for city in ACCESS_CITIES:
            assert -9 <= city.utc_offset_hours <= -4


class TestGreatCircle:
    def test_zero_distance_to_self(self):
        city = ACCESS_CITIES[0]
        assert great_circle_km(city, city) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        a, b = ACCESS_CITIES[0], ACCESS_CITIES[1]
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_ny_to_la_about_3940km(self):
        ny = find_city("new_york_ny")
        la = find_city("los_angeles_ca")
        assert great_circle_km(ny, la) == pytest.approx(3940.0, rel=0.03)

    def test_triangle_inequality(self):
        a = find_city("new_york_ny")
        b = find_city("chicago_il", ACCESS_CITIES)
        c = find_city("los_angeles_ca")
        assert great_circle_km(a, c) <= great_circle_km(a, b) + great_circle_km(b, c) + 1e-9


class TestPropagationDelay:
    def test_monotone_in_distance(self):
        assert propagation_delay_ms(100.0) < propagation_delay_ms(2000.0)

    def test_coast_to_coast_realistic(self):
        # ~4000 km: one-way fiber latency should land in the 20-40 ms range.
        delay = propagation_delay_ms(4000.0)
        assert 20.0 < delay < 40.0

    def test_zero_distance_still_has_overhead(self):
        assert propagation_delay_ms(0.0) > 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            propagation_delay_ms(-1.0)
        with pytest.raises(ValueError):
            propagation_delay_ms(10.0, stretch=0.5)


class TestFindCity:
    def test_by_key(self):
        assert find_city("houston_tx").name == "Houston"

    def test_by_name_case_insensitive(self):
        assert find_city("HOUSTON").state == "TX"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            find_city("gotham_ny")

    def test_restricted_pool(self):
        pool = (City("Testville", "TS", 40.0, -100.0, 1, -6),)
        assert find_city("testville_ts", pool).name == "Testville"
        with pytest.raises(KeyError):
            find_city("houston_tx", pool)
