"""Hostile arrival-scenario library (repro.events.arrivals).

Structural guarantees run under hypothesis (sorted, in-range,
seed-reproducible streams for every process kind); the statistical
guarantees — advertised aggregate rates, regional shock correlation —
use fixed seeds with tolerances sized from the known count variances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.arrivals import (
    MMPPArrivals,
    PoissonArrivals,
    RegionalShockArrivals,
    TraceArrivals,
    flash_crowd_process,
)
from repro.workload.spikes import FlashCrowd, apply_flash_crowds

_RATES = np.array([[30.0, 50.0, 20.0, 40.0], [10.0, 0.0, 60.0, 25.0]])


def _make_process(kind: str, rates: np.ndarray):
    if kind == "poisson":
        return PoissonArrivals(rates=rates)
    if kind == "mmpp":
        return MMPPArrivals(rates=rates, burstiness=0.7, switches_per_period=3.0)
    return RegionalShockArrivals(
        rates=rates, regions=tuple(0 for _ in range(rates.shape[0])), sigma=0.8
    )


@pytest.mark.parametrize("kind", ["poisson", "mmpp", "shock"])
@given(
    seed=st.integers(0, 10**9),
    period=st.integers(0, 3),
    location=st.integers(0, 1),
    duration=st.floats(0.1, 5.0),
)
@settings(max_examples=25)
def test_streams_sorted_in_range_and_reproducible(kind, seed, period, location, duration):
    process = _make_process(kind, _RATES)
    first = process.arrivals(seed, period, location, duration)
    again = process.arrivals(seed, period, location, duration)

    assert np.array_equal(first, again)  # pure function of the seed material
    assert np.all(np.diff(first) >= 0.0)
    if first.size:
        assert first[0] >= 0.0
        assert first[-1] < duration
    if _RATES[location, period] == 0.0:
        assert first.size == 0


@pytest.mark.parametrize("kind", ["poisson", "mmpp", "shock"])
def test_streams_depend_on_every_seed_component(kind):
    process = _make_process(kind, _RATES)
    base = process.arrivals(7, 1, 0, 2.0)
    assert not np.array_equal(base, process.arrivals(8, 1, 0, 2.0))
    assert not np.array_equal(base, process.arrivals(7, 2, 0, 2.0))
    assert not np.array_equal(base, process.arrivals(7, 1, 1, 2.0))


@pytest.mark.parametrize("kind", ["poisson", "mmpp", "shock"])
def test_advertised_aggregate_rate(kind):
    # Mean count over 300 independent seeds must match rate * duration.
    # Tolerances are ~4 standard errors of the mean: Poisson counts have
    # variance 50; the MMPP/shock rate modulation inflates it to O(800),
    # so their standard error is ~1.7 requests.
    rate, duration, seeds = 50.0, 1.0, 300
    rates = np.full((1, 2), rate)
    process = _make_process(kind, rates)
    counts = [process.arrivals(seed, 1, 0, duration).size for seed in range(seeds)]
    tolerance = 2.0 if kind == "poisson" else 7.0
    assert abs(np.mean(counts) - rate * duration) < tolerance
    assert process.mean_rate(1, 0) == rate


def test_mmpp_is_actually_burstier_than_poisson():
    rates = np.full((1, 2), 50.0)
    poisson = PoissonArrivals(rates=rates)
    mmpp = MMPPArrivals(rates=rates, burstiness=0.9, switches_per_period=2.0)
    p_counts = [poisson.arrivals(seed, 1, 0, 1.0).size for seed in range(300)]
    m_counts = [mmpp.arrivals(seed, 1, 0, 1.0).size for seed in range(300)]
    assert np.var(m_counts) > 3.0 * np.var(p_counts)


class TestRegionalShocks:
    def test_multiplier_shared_within_region_and_mean_one(self):
        process = RegionalShockArrivals(
            rates=np.full((4, 3), 20.0),
            regions=(0, 0, 1, 1),
            sigma=0.6,
            shock_probability=1.0,
        )
        # The multiplier is a pure function of (seed, period, region):
        # co-regional locations *must* agree on it.
        assert process.multiplier(3, 1, 0) == process.multiplier(3, 1, 0)
        samples = [process.multiplier(seed, 1, 0) for seed in range(2000)]
        assert abs(np.mean(samples) - 1.0) < 0.05  # lognormal mean-1 drift

    def test_counts_correlated_within_region_not_across(self):
        # shock_probability 1 and sigma 1 make the shared multiplier
        # dominate the count variance: corr(co-regional) ~ 1 while
        # corr(cross-region) is O(1/sqrt(periods)).
        K = 201
        process = RegionalShockArrivals(
            rates=np.full((3, K), 200.0),
            regions=(0, 0, 1),
            sigma=1.0,
            shock_probability=1.0,
        )
        counts = np.array(
            [
                [process.arrivals(0, period, v, 1.0).size for period in range(1, K)]
                for v in range(3)
            ],
            dtype=float,
        )
        same_region = np.corrcoef(counts[0], counts[1])[0, 1]
        cross_region = np.corrcoef(counts[0], counts[2])[0, 1]
        assert same_region > 0.8
        assert abs(cross_region) < 0.3

    def test_validation(self):
        rates = np.full((2, 3), 5.0)
        with pytest.raises(ValueError, match="regions"):
            RegionalShockArrivals(rates=rates, regions=(0,))
        with pytest.raises(ValueError, match="sigma"):
            RegionalShockArrivals(rates=rates, regions=(0, 0), sigma=0.0)
        with pytest.raises(ValueError, match="shock_probability"):
            RegionalShockArrivals(rates=rates, regions=(0, 0), shock_probability=1.5)
        with pytest.raises(ValueError, match="nonnegative"):
            RegionalShockArrivals(rates=rates, regions=(0, -1))


def test_flash_crowd_process_spikes_the_rates():
    rates = np.full((2, 6), 10.0)
    crowd = FlashCrowd(
        location_index=1, start_period=2, peak_multiplier=3.0, ramp_periods=1
    )
    process = flash_crowd_process(rates, [crowd])
    assert isinstance(process, PoissonArrivals)
    np.testing.assert_array_equal(process.rates, apply_flash_crowds(rates, [crowd]))
    assert process.mean_rate(3, 1) == pytest.approx(3.0 * rates[1, 3])
    assert process.mean_rate(3, 0) == rates[0, 3]


def test_rate_validation_and_cell_bounds():
    with pytest.raises(ValueError, match="finite and nonnegative"):
        PoissonArrivals(rates=np.array([[1.0, -2.0]]))
    with pytest.raises(ValueError, match="must be"):
        PoissonArrivals(rates=np.ones(3))
    process = PoissonArrivals(rates=_RATES)
    with pytest.raises(IndexError):
        process.arrivals(0, 99, 0, 1.0)
    with pytest.raises(IndexError):
        process.mean_rate(0, 99)
    with pytest.raises(ValueError, match="burstiness"):
        MMPPArrivals(rates=_RATES, burstiness=1.0)
    with pytest.raises(ValueError, match="switches_per_period"):
        MMPPArrivals(rates=_RATES, switches_per_period=0.0)


class TestTraceArrivals:
    def _random_log(self, n=500, K=5, V=3, duration=2.0, seed=4):
        rng = np.random.default_rng(seed)
        span = (K - 1) * duration
        times = rng.uniform(0.0, span, size=n)
        locations = rng.integers(0, V, size=n)
        return times, locations, K, V, duration

    def test_round_trip_no_lost_no_duplicated_requests(self):
        times, locations, K, V, duration = self._random_log()
        trace = TraceArrivals.from_request_log(
            times, locations, num_periods=K, num_locations=V, period_duration=duration
        )
        rebuilt_times = []
        total = 0
        for period in range(1, K):
            start = (period - 1) * duration
            for v in range(V):
                offsets = trace.arrivals(0, period, v, duration)
                total += offsets.size
                rebuilt_times.append(start + offsets)
                # every offset stays inside its period bin
                assert np.all((offsets >= 0.0) & (offsets < duration))
        assert total == times.size  # conservation: every request exactly once
        np.testing.assert_allclose(
            np.sort(np.concatenate(rebuilt_times)), np.sort(times), atol=1e-9
        )

    def test_rate_matrix_matches_bin_counts(self):
        times, locations, K, V, duration = self._random_log()
        trace = TraceArrivals.from_request_log(
            times, locations, num_periods=K, num_locations=V, period_duration=duration
        )
        rates = trace.rate_matrix()
        assert rates.shape == (V, K)
        np.testing.assert_array_equal(rates[:, 0], rates[:, 1])
        for period in range(1, K):
            for v in range(V):
                count = trace.arrivals(0, period, v, duration).size
                assert rates[v, period] == pytest.approx(count / duration)
                assert trace.mean_rate(period, v) == pytest.approx(count / duration)

    def test_from_request_log_sorts_and_infers(self):
        times = np.array([3.0, 1.0, 2.0, 0.5])
        locations = np.array([1, 0, 1, 0])
        trace = TraceArrivals.from_request_log(times, locations, num_periods=3)
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.num_locations == 2
        # inferred duration barely contains the last request
        assert trace.times[-1] < (trace.num_periods - 1) * trace.period_duration

    def test_validation(self):
        with pytest.raises(ValueError, match="sorted"):
            TraceArrivals(
                times=np.array([2.0, 1.0]),
                locations=np.array([0, 0]),
                num_periods=3,
                num_locations=1,
                period_duration=2.0,
            )
        with pytest.raises(ValueError, match="beyond the replayed"):
            TraceArrivals(
                times=np.array([1.0, 99.0]),
                locations=np.array([0, 0]),
                num_periods=3,
                num_locations=1,
                period_duration=2.0,
            )
        with pytest.raises(ValueError, match="location"):
            TraceArrivals(
                times=np.array([1.0]),
                locations=np.array([5]),
                num_periods=3,
                num_locations=2,
                period_duration=2.0,
            )
        with pytest.raises(ValueError, match="empty trace"):
            TraceArrivals.from_request_log(
                np.empty(0), np.empty(0, dtype=np.int64), num_periods=3
            )
        trace = TraceArrivals.from_request_log(
            np.array([0.5, 1.5]), np.array([0, 0]), num_periods=3, period_duration=2.0
        )
        with pytest.raises(IndexError):
            trace.arrivals(0, 0, 0, 2.0)  # period 0 never replays
