"""Tests for the control package (horizon, mpc, loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.horizon import effective_horizon, forecast_window
from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.core.instance import DSPPInstance
from repro.prediction.naive import LastValuePredictor
from repro.prediction.oracle import OraclePredictor


@pytest.fixture
def single_pair_instance():
    return DSPPInstance(
        datacenters=("dc",),
        locations=("v",),
        sla_coefficients=np.array([[0.1]]),
        reconfiguration_weights=np.array([1.0]),
        capacities=np.array([np.inf]),
        initial_state=np.array([[10.0]]),
    )


class TestEffectiveHorizon:
    def test_infinite_run(self):
        assert effective_horizon(5, 100, None) == 5

    def test_clamped_near_the_end(self):
        assert effective_horizon(5, 8, 10) == 2

    def test_zero_when_done(self):
        assert effective_horizon(5, 10, 10) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_horizon(0, 0, None)
        with pytest.raises(ValueError):
            effective_horizon(1, -1, None)


class TestForecastWindow:
    def test_plain_slice(self):
        truth = np.arange(10, dtype=float).reshape(1, 10)
        window = forecast_window(truth, 3, 4)
        assert window[0] == pytest.approx([3.0, 4.0, 5.0, 6.0])

    def test_extends_last_column(self):
        truth = np.arange(4, dtype=float).reshape(1, 4)
        window = forecast_window(truth, 2, 5)
        assert window[0] == pytest.approx([2.0, 3.0, 3.0, 3.0, 3.0])

    def test_validation(self):
        truth = np.ones((1, 3))
        with pytest.raises(ValueError):
            forecast_window(truth, -1, 2)
        with pytest.raises(ValueError):
            forecast_window(truth, 0, 0)
        with pytest.raises(ValueError):
            forecast_window(np.empty((1, 0)), 0, 1)


class TestMPCConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MPCConfig(window=0)
        with pytest.raises(ValueError):
            MPCConfig(slack_penalty=0.0)


class TestMPCController:
    def test_dimension_checks(self, single_pair_instance):
        with pytest.raises(ValueError, match="demand predictor"):
            MPCController(
                single_pair_instance, LastValuePredictor(2), LastValuePredictor(1)
            )
        with pytest.raises(ValueError, match="price predictor"):
            MPCController(
                single_pair_instance, LastValuePredictor(1), LastValuePredictor(2)
            )

    def test_step_applies_only_first_move(self, single_pair_instance):
        demand = np.full((1, 10), 200.0)
        prices = np.ones((1, 10))
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=4),
        )
        step = controller.step(demand[:, 0], prices[:, 0])
        assert step.new_state == pytest.approx(
            single_pair_instance.initial_state + step.applied_control
        )
        assert controller.state == pytest.approx(step.new_state)
        assert controller.period == 1

    def test_tracks_rising_demand(self, single_pair_instance):
        demand = np.linspace(100.0, 400.0, 8).reshape(1, 8)
        prices = np.ones((1, 8))
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3),
        )
        states = []
        for k in range(6):
            states.append(controller.step(demand[:, k], prices[:, k]).new_state[0, 0])
        assert states == sorted(states)

    def test_set_capacities(self, single_pair_instance):
        controller = MPCController(
            single_pair_instance, LastValuePredictor(1), LastValuePredictor(1)
        )
        controller.set_capacities(np.array([42.0]))
        assert controller.instance.capacities[0] == 42.0

    def test_reset(self, single_pair_instance):
        demand = np.full((1, 5), 100.0)
        prices = np.ones((1, 5))
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
        )
        controller.step(demand[:, 0], prices[:, 0])
        controller.reset()
        assert controller.period == 0
        assert controller.state == pytest.approx(single_pair_instance.initial_state)
        assert controller.demand_predictor.num_observations == 0

    def test_horizon_override(self, single_pair_instance):
        demand = np.full((1, 5), 100.0)
        prices = np.ones((1, 5))
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=4),
        )
        step = controller.step(demand[:, 0], prices[:, 0], horizon=2)
        assert step.predicted_demand.shape == (1, 2)

    def test_invalid_horizon(self, single_pair_instance):
        controller = MPCController(
            single_pair_instance, LastValuePredictor(1), LastValuePredictor(1)
        )
        with pytest.raises(ValueError):
            controller.step(np.array([1.0]), np.array([1.0]), horizon=0)


class TestClosedLoop:
    def test_oracle_constant_demand_has_no_unmet(self, single_pair_instance):
        demand = np.full((1, 8), 150.0)
        prices = np.ones((1, 8))
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=2),
        )
        result = run_closed_loop(controller, demand, prices)
        assert result.total_unmet_demand == pytest.approx(0.0, abs=1e-5)
        assert result.sla_violation_periods == 0

    def test_costs_match_manual_audit(self, single_pair_instance):
        demand = np.full((1, 6), 150.0)
        prices = np.linspace(1.0, 2.0, 6).reshape(1, 6)
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=2),
        )
        result = run_closed_loop(controller, demand, prices)
        states = result.trajectory.states
        controls = result.trajectory.controls
        manual_alloc = sum(
            float(states[t].sum(axis=1) @ prices[:, t + 1]) for t in range(5)
        )
        manual_recon = sum(float((controls[t] ** 2).sum()) for t in range(5))
        assert result.costs.allocation_total == pytest.approx(manual_alloc)
        assert result.costs.reconfiguration_total == pytest.approx(manual_recon)

    def test_lastvalue_lags_step_up(self, single_pair_instance):
        demand = np.concatenate(
            [np.full((1, 3), 100.0), np.full((1, 3), 300.0)], axis=1
        )
        prices = np.ones((1, 6))
        controller = MPCController(
            single_pair_instance,
            LastValuePredictor(1),
            LastValuePredictor(1),
            MPCConfig(window=2),
        )
        result = run_closed_loop(controller, demand, prices)
        # The step from 100 -> 300 happens at period 3; a persistence
        # forecaster cannot see it coming, so that period has unmet demand.
        assert result.unmet_demand[2, 0] > 0
        assert result.sla_violation_periods >= 1

    def test_shape_validation(self, single_pair_instance):
        controller = MPCController(
            single_pair_instance, LastValuePredictor(1), LastValuePredictor(1)
        )
        with pytest.raises(ValueError, match="demand"):
            run_closed_loop(controller, np.ones((2, 5)), np.ones((1, 5)))
        with pytest.raises(ValueError, match="prices"):
            run_closed_loop(controller, np.ones((1, 5)), np.ones((1, 4)))
        with pytest.raises(ValueError, match="at least 2"):
            run_closed_loop(controller, np.ones((1, 1)), np.ones((1, 1)))

    def test_number_of_steps(self, single_pair_instance):
        demand = np.full((1, 7), 120.0)
        prices = np.ones((1, 7))
        controller = MPCController(
            single_pair_instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
        )
        result = run_closed_loop(controller, demand, prices)
        assert result.trajectory.num_steps == 6
        assert len(result.steps) == 6

    def test_elastic_controller_survives_infeasible_forecast(self):
        # Tiny capacity: hard-constrained MPC would raise, elastic runs.
        instance = DSPPInstance(
            datacenters=("dc",),
            locations=("v",),
            sla_coefficients=np.array([[0.1]]),
            reconfiguration_weights=np.array([1.0]),
            capacities=np.array([3.0]),
            initial_state=np.zeros((1, 1)),
        )
        demand = np.full((1, 5), 500.0)
        prices = np.ones((1, 5))
        controller = MPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=2, slack_penalty=10.0),
        )
        result = run_closed_loop(controller, demand, prices)
        assert result.total_unmet_demand > 0
        assert np.all(result.trajectory.states[:, 0, 0] <= 3.0 + 1e-6)


class TestStructureFingerprintCaching:
    def test_reusing_workspace_hashes_structure_once(self, monkeypatch):
        """A receding-horizon run with ``reuse_workspace=True`` must hash
        the structure-relevant arrays exactly once: ``with_initial_state``
        propagates the memoized key, so advancing the state every period
        never re-invokes ``_compute_structure_key``."""
        calls = {"n": 0}
        original = DSPPInstance._compute_structure_key

        def counting(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(DSPPInstance, "_compute_structure_key", counting)

        instance = DSPPInstance(
            datacenters=("a", "b"),
            locations=("v0", "v1", "v2"),
            sla_coefficients=np.array(
                [[0.1, 0.12, 0.2], [0.15, 0.1, 0.11]]
            ),
            reconfiguration_weights=np.array([1.0, 1.5]),
            capacities=np.array([np.inf, np.inf]),
            initial_state=np.zeros((2, 3)),
        )
        demand = np.full((3, 8), 30.0)
        prices = np.ones((2, 8))
        controller = MPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3, reuse_workspace=True),
        )
        run_closed_loop(controller, demand, prices)
        assert calls["n"] == 1

    def test_derived_instances_share_the_memoized_key(self):
        instance = DSPPInstance(
            datacenters=("a",),
            locations=("v",),
            sla_coefficients=np.array([[0.1]]),
            reconfiguration_weights=np.array([1.0]),
            capacities=np.array([np.inf]),
            initial_state=np.zeros((1, 1)),
        )
        key = instance.structure_key()
        derived = instance.with_initial_state(np.ones((1, 1)))
        assert derived.structure_key() is key
        quota = instance.with_capacities(np.array([5.0]))
        assert quota.structure_key() is key
