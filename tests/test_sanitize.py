"""Tests for the runtime numerics sanitizer (:mod:`repro.sanitize`).

The sanitizer must (a) trip on injected faults at both the ufunc level
(:func:`guard`) and at module boundaries (:func:`check_finite`), (b) be a
true no-op when disabled, and — most importantly — (c) never change a
solver result that does not raise: outputs with the sanitizer on must be
bitwise identical to outputs with it off.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro.sanitize as sanitize
from repro.sanitize import SanitizeError, check_finite, guard, sanitized, tolerant
from repro.solvers.qp import QPProblem, QPStatus
from repro.solvers.workspace import QPWorkspace


@pytest.fixture(autouse=True)
def _clean_sanitizer_state():
    """Restore the module's enabled flag and counters around every test."""
    was_enabled = sanitize.enabled()
    sanitize.reset_report()
    yield
    if was_enabled:
        sanitize.enable()
    else:
        sanitize.disable()
    sanitize.reset_report()


def _box_qp() -> tuple[np.ndarray, ...]:
    """A tiny strictly convex box QP with a unique interior-ish optimum."""
    P = np.array([[4.0, 1.0], [1.0, 2.0]])
    q = np.array([1.0, 1.0])
    A = np.eye(2)
    l = np.array([0.0, 0.0])
    u = np.array([0.7, 0.7])
    return P, q, A, l, u


class TestGating:
    def test_sanitized_context_restores_previous_state(self) -> None:
        sanitize.disable()
        with sanitized():
            assert sanitize.enabled()
        assert not sanitize.enabled()

    def test_enable_disable_roundtrip(self) -> None:
        sanitize.enable()
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()

    def test_everything_is_a_noop_when_disabled(self) -> None:
        sanitize.disable()
        with guard("off"), np.errstate(invalid="ignore"):
            np.array(0.0) / np.array(0.0)  # would raise if enabled
        check_finite("off", np.array([np.nan]))
        sanitize.record_solve(1.0, 1.0)
        sanitize.record_refinement(3, 1.0)
        sanitize.record_pivot(1e-12)
        snap = sanitize.report()
        assert snap.qp_solves == 0 and snap.kkt_solves == 0
        assert snap.finite_checks == 0 and np.isinf(snap.min_pivot)


class TestGuard:
    def test_invalid_operation_raises_with_label(self) -> None:
        with sanitized():
            with pytest.raises(SanitizeError, match="bad kernel"):
                with guard("bad kernel"):
                    np.array(0.0) / np.array(0.0)

    def test_overflow_raises(self) -> None:
        with sanitized():
            with pytest.raises(SanitizeError):
                with guard("overflow"):
                    np.array(1e308) * np.array(1e308)

    def test_is_a_floating_point_error(self) -> None:
        # A single `except FloatingPointError` must catch sanitizer trips.
        assert issubclass(SanitizeError, FloatingPointError)

    def test_clean_arithmetic_passes_through(self) -> None:
        with sanitized():
            with guard("fine"):
                out = np.ones(4) / np.full(4, 2.0)
        np.testing.assert_array_equal(out, np.full(4, 0.5))


class TestTolerant:
    def test_opts_out_of_an_enclosing_guard(self) -> None:
        with sanitized():
            with guard("outer"):
                with tolerant("designed fallback"), np.errstate(invalid="ignore"):
                    value = float(np.array(np.inf) - np.array(np.inf))
        assert np.isnan(value)


class TestCheckFinite:
    def test_nan_in_plain_array(self) -> None:
        with sanitized():
            with pytest.raises(SanitizeError, match="factor input"):
                check_finite("factor input", np.array([1.0, np.nan]))

    def test_inf_rejected_unless_allowed(self) -> None:
        bounds = np.array([0.0, np.inf])
        with sanitized():
            with pytest.raises(SanitizeError):
                check_finite("strict", bounds)
            check_finite("bounds", bounds, allow_inf=True)

    def test_allow_inf_still_rejects_nan(self) -> None:
        with sanitized():
            with pytest.raises(SanitizeError):
                check_finite("bounds", np.array([np.nan, np.inf]), allow_inf=True)

    def test_problem_container_tolerates_infinite_bounds(self) -> None:
        P, q, A, l, u = _box_qp()
        problem = QPProblem.build(P, q, A, np.array([0.0, -np.inf]), np.array([np.inf, 0.7]))
        with sanitized():
            check_finite("problem", problem)

    def test_problem_container_catches_nan_in_q(self) -> None:
        P, q, A, l, u = _box_qp()
        problem = QPProblem.build(P, np.array([np.nan, 1.0]), A, l, u)
        with sanitized():
            with pytest.raises(SanitizeError, match="q"):
                check_finite("problem", problem)

    def test_sparse_matrices_are_inspected(self) -> None:
        bad = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, np.nan]]))
        with sanitized():
            with pytest.raises(SanitizeError):
                check_finite("sparse", bad)

    def test_integer_arrays_are_skipped(self) -> None:
        with sanitized():
            check_finite("ints", np.array([1, 2, 3]))

    def test_none_and_nested_sequences(self) -> None:
        with sanitized():
            check_finite("nested", None, [np.ones(2), (np.zeros(3), None)])
            with pytest.raises(SanitizeError):
                check_finite("nested", [np.ones(2), (np.array([np.nan]),)])


class TestWorkspaceIntegration:
    def test_nan_injected_via_update_is_caught_at_the_boundary(self) -> None:
        P, q, A, l, u = _box_qp()
        ws = QPWorkspace()
        ws.setup(P, A, q=q, l=l, u=u)
        with sanitized():
            with pytest.raises(SanitizeError, match="QPWorkspace.update"):
                ws.update(q=np.array([np.nan, 1.0]))

    def test_nan_injected_at_setup_is_caught(self) -> None:
        P, q, A, l, u = _box_qp()
        ws = QPWorkspace()
        with sanitized():
            with pytest.raises(SanitizeError, match="QPWorkspace.setup"):
                ws.setup(P * np.nan, A, q=q, l=l, u=u)

    def test_infinite_bounds_are_legal_at_setup(self) -> None:
        P, q, A, l, u = _box_qp()
        ws = QPWorkspace()
        with sanitized():
            ws.setup(P, A, q=q, l=np.array([-np.inf, 0.0]), u=u)
            solution = ws.solve()
        assert solution.status is QPStatus.OPTIMAL

    def test_counters_populate_during_a_sanitized_solve(self) -> None:
        P, q, A, l, u = _box_qp()
        ws = QPWorkspace()
        ws.setup(P, A, q=q, l=l, u=u)
        with sanitized():
            solution = ws.solve()
        assert solution.status is QPStatus.OPTIMAL
        snap = sanitize.report()
        assert snap.qp_solves == 1
        assert snap.finite_checks > 0
        assert np.isfinite(snap.worst_primal_residual)
        assert snap.worst_primal_residual >= 0.0

    def test_reset_report_zeroes_counters(self) -> None:
        with sanitized():
            check_finite("touch", np.ones(1))
        assert sanitize.report().finite_checks == 1
        sanitize.reset_report()
        assert sanitize.report().finite_checks == 0

    def test_report_is_a_snapshot_not_a_live_view(self) -> None:
        snap = sanitize.report()
        with sanitized():
            check_finite("touch", np.ones(1))
        assert snap.finite_checks == 0

    def test_format_report_mentions_every_counter_block(self) -> None:
        text = sanitize.format_report()
        for needle in ("qp solves", "banded kkt solves", "min cholesky pivot", "finiteness checks"):
            assert needle in text


class TestMPCIntegration:
    def test_nan_observation_is_caught_before_the_predictors(self) -> None:
        from repro.control.mpc import MPCConfig, MPCController
        from repro.core.instance import DSPPInstance
        from repro.prediction.naive import LastValuePredictor

        instance = DSPPInstance(
            datacenters=("dc",),
            locations=("v",),
            sla_coefficients=np.array([[0.1]]),
            reconfiguration_weights=np.array([1.0]),
            capacities=np.array([np.inf]),
            initial_state=np.array([[10.0]]),
        )
        controller = MPCController(
            instance,
            LastValuePredictor(num_series=1),
            LastValuePredictor(num_series=1),
            MPCConfig(window=2),
        )
        with sanitized():
            with pytest.raises(SanitizeError, match="observations"):
                controller.step(np.array([np.nan]), np.array([1.0]))


class TestBitwiseIdentity:
    def test_sanitizer_never_changes_solver_output(self) -> None:
        """Guards observe, never modify: on/off runs must agree bitwise."""
        P, q, A, l, u = _box_qp()

        def run() -> tuple[bytes, bytes, float]:
            ws = QPWorkspace()
            ws.setup(P, A, q=q, l=l, u=u)
            solution = ws.solve()
            return solution.x.tobytes(), solution.y.tobytes(), solution.objective

        sanitize.disable()
        plain = run()
        with sanitized():
            checked = run()
        assert plain == checked
