"""Tests for the reference oracles (repro.verify.oracles)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.instance import DSPPInstance
from repro.solvers.qp import QPProblem, solve_qp
from repro.verify.generators import random_qp
from repro.verify.oracles import (
    Discrepancy,
    brute_force_placement,
    check_mm1_against_sim,
    check_qp_against_reference,
    check_qp_kkt,
    reference_qp_solution,
    relative_gap,
)


class TestRelativeGap:
    def test_zero_for_equal_values(self):
        assert relative_gap(3.0, 3.0) == 0.0

    def test_normalizes_by_magnitude(self):
        assert relative_gap(1000.0, 1001.0) == pytest.approx(1.0 / 1001.0)

    def test_small_values_use_absolute_scale(self):
        # Below magnitude 1 the denominator saturates at 1 (absolute gap).
        assert relative_gap(0.0, 1e-3) == pytest.approx(1e-3)


class TestReferenceQPSolution:
    def test_matches_closed_form_on_inactive_box(self):
        # min 1/2 x'Px + q'x with a box wide enough to be inactive:
        # the optimum is the unconstrained x* = -P^{-1} q.
        P = np.diag([2.0, 4.0])
        q = np.array([-2.0, -8.0])
        A = np.eye(2)
        l = np.array([-10.0, -10.0])
        u = np.array([10.0, 10.0])
        x, obj = reference_qp_solution(P, q, A, l, u)
        np.testing.assert_allclose(x, [1.0, 2.0], atol=1e-6)
        assert obj == pytest.approx(-9.0, abs=1e-8)

    def test_respects_active_bound(self):
        # Same QP but cap x1 <= 1: KKT gives x = (1, 1).
        P = np.diag([2.0, 4.0])
        q = np.array([-2.0, -8.0])
        x, obj = reference_qp_solution(
            P, q, np.eye(2), np.array([-10.0, -10.0]), np.array([10.0, 1.0])
        )
        # trust-constr approaches active bounds from the interior, so the
        # achievable accuracy at the bound is looser than in the interior.
        np.testing.assert_allclose(x, [1.0, 1.0], atol=1e-4)
        assert obj == pytest.approx(-7.0, abs=1e-3)


class TestCheckQPAgainstReference:
    def test_accepts_solver_output(self, rng):
        P, q, A, l, u = random_qp(rng, "small")
        problem = QPProblem.build(P, q, A, l, u)
        solution = solve_qp(P, q, A, l, u)
        findings = check_qp_against_reference(
            problem, solution, "test", unique_optimum=True
        )
        assert findings == []

    def test_flags_wrong_objective(self, rng):
        P, q, A, l, u = random_qp(rng, "small")
        problem = QPProblem.build(P, q, A, l, u)
        solution = solve_qp(P, q, A, l, u)
        corrupted = replace(solution, objective=solution.objective + 1.0)
        findings = check_qp_against_reference(problem, corrupted, "test")
        assert len(findings) == 1
        assert "objective worse than reference" in findings[0].message

    def test_accepts_objective_better_than_loose_reference(self, rng):
        # A reference that stopped short of the optimum reports a *larger*
        # objective; the one-sided gap must not blame the fast solver.
        P, q, A, l, u = random_qp(rng, "small")
        problem = QPProblem.build(P, q, A, l, u)
        solution = solve_qp(P, q, A, l, u)
        better = replace(solution, objective=solution.objective - 1.0)
        assert check_qp_against_reference(problem, better, "test") == []

    def test_flags_wrong_primal_when_unique(self, rng):
        P, q, A, l, u = random_qp(rng, "small")
        problem = QPProblem.build(P, q, A, l, u)
        solution = solve_qp(P, q, A, l, u)
        corrupted = replace(solution, x=solution.x + 0.5)
        findings = check_qp_against_reference(
            problem, corrupted, "test", unique_optimum=True
        )
        assert any("primal" in f.message for f in findings)


class TestCheckQPKKT:
    def test_accepts_solver_output(self, rng):
        P, q, A, l, u = random_qp(rng, "small")
        problem = QPProblem.build(P, q, A, l, u)
        solution = solve_qp(P, q, A, l, u)
        assert check_qp_kkt(problem, solution, "test") == []

    def test_flags_corrupted_primal(self, rng):
        P, q, A, l, u = random_qp(rng, "small")
        problem = QPProblem.build(P, q, A, l, u)
        solution = solve_qp(P, q, A, l, u)
        corrupted = replace(solution, x=solution.x + 1.0)
        findings = check_qp_kkt(problem, corrupted, "test")
        assert len(findings) == 1
        assert "KKT residuals" in findings[0].message


class TestBruteForcePlacement:
    @pytest.fixture
    def one_pair(self):
        return DSPPInstance(
            datacenters=("dc0",),
            locations=("v0",),
            sla_coefficients=np.array([[0.5]]),  # coeff = 2 demand/server
            reconfiguration_weights=np.array([1.0]),
            capacities=np.array([50.0]),
            initial_state=np.zeros((1, 1)),
        )

    def test_picks_cheapest_feasible_count(self, one_pair):
        # Demand 3 at 2 demand/server needs >= 2 servers; cost p*x + x^2
        # grows in x, so the optimum is exactly 2.
        result = brute_force_placement(
            one_pair, np.array([3.0]), np.array([1.0]), max_servers_per_pair=5
        )
        assert result is not None
        x, cost = result
        np.testing.assert_allclose(x, [[2.0]])
        assert cost == pytest.approx(1.0 * 2 + 2.0**2)

    def test_reconfiguration_term_uses_initial_state(self, one_pair):
        # Starting from x0 = 4 at price 2.5: staying costs 10, x=2 costs
        # 5 + 4 = 9, and x=3 costs 7.5 + 1 = 8.5 — the unique optimum
        # balances the energy saving against the reconfiguration penalty.
        instance = replace(one_pair, initial_state=np.array([[4.0]]))
        result = brute_force_placement(
            instance, np.array([3.0]), np.array([2.5]), max_servers_per_pair=6
        )
        assert result is not None
        x, cost = result
        np.testing.assert_allclose(x, [[3.0]])
        assert cost == pytest.approx(2.5 * 3 + (3.0 - 4.0) ** 2)

    def test_returns_none_when_box_too_small(self, one_pair):
        # Demand 10 needs 5 servers; a box of 2 admits no feasible point.
        assert (
            brute_force_placement(
                one_pair, np.array([10.0]), np.array([1.0]), max_servers_per_pair=2
            )
            is None
        )


class TestCheckMM1AgainstSim:
    def test_moderate_utilization_within_tolerance(self, rng):
        findings = check_mm1_against_sim(
            rng, arrival_rate=4.0, service_rate=10.0, check="test"
        )
        assert findings == []

    def test_tiny_tolerance_forces_finding(self, rng):
        # The simulator's statistical noise exceeds any near-zero tolerance,
        # proving the comparison is actually exercised.
        findings = check_mm1_against_sim(
            rng,
            arrival_rate=4.0,
            service_rate=10.0,
            check="test",
            num_arrivals=2000.0,
            mean_tol=1e-9,
        )
        assert len(findings) == 1
        assert isinstance(findings[0], Discrepancy)
        assert findings[0].magnitude > 1e-9
