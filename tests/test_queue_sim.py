"""Tests for the event-driven queue simulator — and through it, empirical
validation of the analytical M/M/1 layer the DSPP is built on."""

from __future__ import annotations

import heapq
import math

import numpy as np
import pytest

from repro.queueing.mm1 import MM1Queue
from repro.queueing.sla import sla_coefficient
from repro.simulation.queue_sim import (
    EmpiricalSLAResult,
    effective_sample_size,
    simulate_mg1,
    simulate_mm1,
    simulate_mmc,
    simulate_split_servers,
    sojourn_mean_ci,
    validate_sla_empirically,
)


class TestSimulateMM1:
    def test_mean_sojourn_matches_formula(self, rng):
        lam, mu = 3.0, 5.0
        result = simulate_mm1(lam, mu, horizon=20000.0, rng=rng)
        expected = MM1Queue(lam, mu).mean_sojourn_time
        assert result.mean_sojourn == pytest.approx(expected, rel=0.05)

    def test_percentile_matches_exponential_theory(self, rng):
        lam, mu = 2.0, 5.0
        result = simulate_mm1(lam, mu, horizon=30000.0, rng=rng)
        theory = MM1Queue(lam, mu).sojourn_time_percentile(0.95)
        assert result.percentile(0.95) == pytest.approx(theory, rel=0.07)

    def test_low_load_sojourn_is_service_time(self, rng):
        result = simulate_mm1(0.01, 4.0, horizon=200000.0, rng=rng)
        assert result.mean_sojourn == pytest.approx(0.25, rel=0.05)

    def test_unstable_rejected(self, rng):
        with pytest.raises(ValueError, match="unstable"):
            simulate_mm1(5.0, 5.0, horizon=10.0, rng=rng)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            simulate_mm1(-1.0, 5.0, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_mm1(1.0, 5.0, 0.0, rng)

    def test_percentile_validation(self, rng):
        result = simulate_mm1(1.0, 5.0, 1000.0, rng)
        with pytest.raises(ValueError):
            result.percentile(1.0)


class TestSplitServers:
    def test_matches_per_server_mm1(self, rng):
        # 4 servers sharing 12 req/s at mu=5: each is M/M/1 at rate 3.
        result = simulate_split_servers(12.0, 4, 5.0, horizon=8000.0, rng=rng)
        expected = MM1Queue(3.0, 5.0).mean_sojourn_time
        assert result.mean_sojourn == pytest.approx(expected, rel=0.05)

    def test_more_servers_less_delay(self, rng):
        few = simulate_split_servers(12.0, 3, 5.0, horizon=5000.0, rng=rng)
        many = simulate_split_servers(12.0, 8, 5.0, horizon=5000.0, rng=rng)
        assert many.mean_sojourn < few.mean_sojourn

    def test_unstable_rejected(self, rng):
        with pytest.raises(ValueError, match="unstable"):
            simulate_split_servers(20.0, 2, 5.0, 10.0, rng)


class TestMMC:
    def test_pooling_beats_splitting(self, rng):
        # The paper's split model is conservative: a shared queue (M/M/c)
        # over the same servers has strictly lower mean sojourn.
        split = simulate_split_servers(12.0, 4, 5.0, horizon=8000.0, rng=rng)
        pooled = simulate_mmc(12.0, 4, 5.0, horizon=8000.0, rng=rng)
        assert pooled.mean_sojourn < split.mean_sojourn

    def test_single_server_mmc_is_mm1(self, rng):
        pooled = simulate_mmc(3.0, 1, 5.0, horizon=20000.0, rng=rng)
        expected = MM1Queue(3.0, 5.0).mean_sojourn_time
        assert pooled.mean_sojourn == pytest.approx(expected, rel=0.06)

    def test_unstable_rejected(self, rng):
        with pytest.raises(ValueError, match="unstable"):
            simulate_mmc(30.0, 2, 5.0, 10.0, rng)


def _scalar_lindley_sojourns(
    arrival_times: np.ndarray, services: np.ndarray
) -> np.ndarray:
    """Reference per-arrival Lindley recursion (the pre-vectorization loop)."""
    sojourns = np.empty(arrival_times.size)
    workload = 0.0
    for i in range(arrival_times.size):
        if i > 0:
            gap = arrival_times[i] - arrival_times[i - 1]
            workload = max(0.0, workload + services[i - 1] - gap)
        sojourns[i] = workload + services[i]
    return sojourns


class TestVectorizedEquivalence:
    """Fixed-seed checks that the numpy event batching changed nothing:
    the same seed produces the same samples as a scalar event loop."""

    def test_mm1_matches_scalar_lindley_reference(self):
        lam, mu, horizon = 3.0, 5.0, 500.0
        result = simulate_mm1(lam, mu, horizon, np.random.default_rng(7))

        rng = np.random.default_rng(7)
        expected_arrivals = int(lam * horizon * 1.2) + 10
        inter = rng.exponential(1.0 / lam, size=expected_arrivals)
        arrivals = np.cumsum(inter)
        arrivals = arrivals[arrivals < horizon]
        services = rng.exponential(1.0 / mu, size=arrivals.size)
        sojourns = _scalar_lindley_sojourns(arrivals, services)
        keep = arrivals >= 0.1 * horizon

        np.testing.assert_allclose(
            result.sojourn_times, sojourns[keep], rtol=0, atol=1e-12
        )

    def test_mg1_matches_scalar_lindley_reference(self):
        lam, horizon = 2.0, 500.0

        def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
            return rng.uniform(0.05, 0.3, size=size)

        result = simulate_mg1(lam, sampler, horizon, np.random.default_rng(11))

        rng = np.random.default_rng(11)
        expected_arrivals = int(lam * horizon * 1.2) + 10
        inter = rng.exponential(1.0 / lam, size=expected_arrivals)
        arrivals = np.cumsum(inter)
        arrivals = arrivals[arrivals < horizon]
        services = sampler(rng, arrivals.size)
        sojourns = _scalar_lindley_sojourns(arrivals, services)
        keep = arrivals >= 0.1 * horizon

        np.testing.assert_allclose(
            result.sojourn_times, sojourns[keep], rtol=0, atol=1e-12
        )

    def test_mmc_samples_bitwise_match_scalar_event_loop(self):
        # The batched draws reproduce the interleaved per-event scalar
        # draws bit for bit (one standard-exponential block, alternate
        # entries scaled), and the heap assignment does the same
        # arithmetic — so the sojourn samples are *exactly* equal.
        lam, c, mu, horizon = 12.0, 4, 5.0, 400.0
        result = simulate_mmc(lam, c, mu, horizon, np.random.default_rng(3))

        rng = np.random.default_rng(3)
        free_at = [0.0] * c
        heapq.heapify(free_at)
        time = 0.0
        arrivals_list: list[float] = []
        sojourns_list: list[float] = []
        while True:
            time += rng.exponential(1.0 / lam)
            if time >= horizon:
                break
            service = rng.exponential(1.0 / mu)
            earliest = heapq.heappop(free_at)
            finish = max(time, earliest) + service
            heapq.heappush(free_at, finish)
            arrivals_list.append(time)
            sojourns_list.append(finish - time)
        arrivals = np.asarray(arrivals_list)
        sojourns = np.asarray(sojourns_list)
        keep = arrivals >= 0.1 * horizon

        np.testing.assert_array_equal(result.sojourn_times, sojourns[keep])

    def test_mmc_single_server_matches_scalar_event_loop(self):
        # c == 1 routes through the vectorized Lindley recursion; the
        # samples agree with the scalar loop up to summation rounding.
        lam, mu, horizon = 3.0, 5.0, 400.0
        result = simulate_mmc(lam, 1, mu, horizon, np.random.default_rng(5))

        rng = np.random.default_rng(5)
        free_time = 0.0
        time = 0.0
        arrivals_list: list[float] = []
        sojourns_list: list[float] = []
        while True:
            time += rng.exponential(1.0 / lam)
            if time >= horizon:
                break
            service = rng.exponential(1.0 / mu)
            finish = max(time, free_time) + service
            free_time = finish
            arrivals_list.append(time)
            sojourns_list.append(finish - time)
        arrivals = np.asarray(arrivals_list)
        sojourns = np.asarray(sojourns_list)
        keep = arrivals >= 0.1 * horizon

        np.testing.assert_allclose(
            result.sojourn_times, sojourns[keep], rtol=0, atol=1e-12
        )


class TestEmpiricalSLAValidation:
    def test_eq10_allocation_meets_sla_in_simulation(self, rng):
        # The central claim of Section IV-B, checked against simulated
        # queues instead of algebra: x = a * sigma keeps mean end-to-end
        # latency within the bound.
        network, bound, mu = 0.02, 0.150, 25.0
        a = sla_coefficient(network, bound, mu)
        holds, measured = validate_sla_empirically(
            network, bound, mu, demand=200.0, sla_coefficient=a, rng=rng
        )
        assert holds, f"measured {measured} > bound {bound}"
        # Rounding x up to an integer gives slack, so the measured latency
        # should be below (not at) the bound.
        assert measured < bound

    def test_underprovisioning_detected(self, rng):
        network, bound, mu = 0.02, 0.150, 25.0
        a = sla_coefficient(network, bound, mu)
        # 80% of the required allocation: still stable (load < mu) but the
        # queueing delay blows past the budget.
        holds, measured = validate_sla_empirically(
            network, bound, mu, demand=200.0, sla_coefficient=a * 0.8, rng=rng
        )
        assert not holds
        assert measured > bound


class TestEmpiricalSLAInterval:
    """The confidence-interval surface added to validate_sla_empirically."""

    def test_returns_result_with_interval(self, rng):
        network, bound, mu = 0.02, 0.150, 25.0
        a = sla_coefficient(network, bound, mu)
        result = validate_sla_empirically(
            network, bound, mu, demand=200.0, sla_coefficient=a, rng=rng
        )
        assert isinstance(result, EmpiricalSLAResult)
        assert result.ci_low <= result.measured_latency <= result.ci_high
        assert result.num_samples > 0
        assert 0.0 < result.effective_samples < result.num_samples
        assert 0.0 < result.utilization < 1.0

    def test_tuple_unpacking_stays_backward_compatible(self, rng):
        network, bound, mu = 0.02, 0.150, 25.0
        a = sla_coefficient(network, bound, mu)
        holds, measured = validate_sla_empirically(
            network, bound, mu, demand=200.0, sla_coefficient=a, rng=rng
        )
        assert isinstance(holds, bool)
        assert isinstance(measured, float)

    def test_interval_covers_analytic_latency(self, rng):
        # A long, well-provisioned run: the z=4 autocorrelation-aware CI
        # should cover the analytic mean end-to-end latency.
        network, mu, demand = 0.02, 25.0, 200.0
        a = sla_coefficient(network, 0.150, mu)
        result = validate_sla_empirically(
            network, 0.150, mu, demand=demand, sla_coefficient=a,
            rng=rng, horizon=4000.0,
        )
        servers = math.ceil(a * demand)
        analytic = network + 1.0 / (mu - demand / servers)
        assert result.ci_low <= analytic <= result.ci_high

    def test_effective_sample_size_discount(self):
        assert effective_sample_size(1000, 0.0) == pytest.approx(1000.0)
        assert effective_sample_size(1000, 0.5) == pytest.approx(250.0)
        assert effective_sample_size(1000, 1.0) == 0.0
        assert effective_sample_size(1000, 1.5) == 0.0
        with pytest.raises(ValueError):
            effective_sample_size(-1, 0.5)
        with pytest.raises(ValueError):
            effective_sample_size(10, -0.1)

    def test_sojourn_mean_ci_widens_with_utilization(self, rng):
        samples = rng.exponential(1.0, size=5000)
        low_light, high_light = sojourn_mean_ci(samples, utilization=0.2)
        low_heavy, high_heavy = sojourn_mean_ci(samples, utilization=0.9)
        assert (high_heavy - low_heavy) > (high_light - low_light)
        # Degenerate cases.
        assert sojourn_mean_ci(np.empty(0), 0.5) == (
            pytest.approx(float("nan"), nan_ok=True),
            pytest.approx(float("nan"), nan_ok=True),
        )
        low, high = sojourn_mean_ci(samples, utilization=1.0)
        assert low == float("-inf") and high == float("inf")
