"""Tests for the M/G/1 extension (Pollaczek-Khinchine layer)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.mg1 import (
    mg1_max_load,
    mg1_sla_coefficient,
    mg1_sla_coefficient_matrix,
    mg1_sojourn_time,
)
from repro.queueing.mm1 import queueing_delay
from repro.queueing.sla import sla_coefficient
from repro.simulation.queue_sim import simulate_mg1


class TestSojournTime:
    def test_scv_one_recovers_mm1(self):
        # P-K with exponential service (scv=1) must equal 1/(mu - lam).
        assert mg1_sojourn_time(3.0, 5.0, scv=1.0) == pytest.approx(
            queueing_delay(1.0, 3.0, 5.0)
        )

    def test_deterministic_service_halves_waiting(self):
        lam, mu = 3.0, 5.0
        exponential = mg1_sojourn_time(lam, mu, scv=1.0)
        deterministic = mg1_sojourn_time(lam, mu, scv=0.0)
        wait_exp = exponential - 1.0 / mu
        wait_det = deterministic - 1.0 / mu
        assert wait_det == pytest.approx(wait_exp / 2.0)

    def test_heavier_tails_wait_longer(self):
        assert mg1_sojourn_time(3.0, 5.0, scv=4.0) > mg1_sojourn_time(3.0, 5.0, scv=1.0)

    def test_unstable_is_inf(self):
        assert mg1_sojourn_time(5.0, 5.0, scv=1.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            mg1_sojourn_time(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            mg1_sojourn_time(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            mg1_sojourn_time(1.0, 2.0, -0.5)


class TestMaxLoad:
    def test_inverts_sojourn_time(self):
        mu, scv, bound = 5.0, 2.0, 0.8
        lam = mg1_max_load(mu, scv, bound)
        assert mg1_sojourn_time(lam, mu, scv) == pytest.approx(bound)

    def test_unachievable_bound(self):
        with pytest.raises(ValueError, match="unachievable"):
            mg1_max_load(5.0, 1.0, 0.2)  # 1/mu = 0.2

    def test_lower_scv_sustains_more_load(self):
        smooth = mg1_max_load(5.0, 0.0, 0.5)
        bursty = mg1_max_load(5.0, 4.0, 0.5)
        assert smooth > bursty


class TestCoefficient:
    def test_scv_one_matches_paper_coefficient(self):
        ours = mg1_sla_coefficient(0.02, 0.15, 25.0, scv=1.0)
        paper = sla_coefficient(0.02, 0.15, 25.0)
        assert ours == pytest.approx(paper)

    def test_unreachable_pair_inf(self):
        assert mg1_sla_coefficient(0.2, 0.15, 25.0) == math.inf
        assert mg1_sla_coefficient(0.148, 0.15, 25.0, scv=1.0) == math.inf

    def test_reservation_scales(self):
        base = mg1_sla_coefficient(0.02, 0.15, 25.0, scv=2.0)
        padded = mg1_sla_coefficient(
            0.02, 0.15, 25.0, scv=2.0, reservation_ratio=1.5
        )
        assert padded == pytest.approx(1.5 * base)

    def test_matrix_matches_scalar(self):
        latency = np.array([[0.01, 0.05], [0.08, 0.2]])
        matrix = mg1_sla_coefficient_matrix(latency, 0.15, 25.0, scv=0.5)
        for index, value in np.ndenumerate(latency):
            assert matrix[index] == pytest.approx(
                mg1_sla_coefficient(float(value), 0.15, 25.0, scv=0.5)
            )

    def test_matrix_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            mg1_sla_coefficient_matrix(np.array([[-0.1]]), 0.15, 25.0)

    def test_plugs_into_dspp(self):
        # The adaptability claim: an M/D/1 coefficient matrix drives the
        # standard DSPP solve unchanged.
        from repro.core.dspp import solve_dspp
        from repro.core.instance import DSPPInstance

        latency = np.array([[0.01, 0.04], [0.05, 0.01]])
        a = mg1_sla_coefficient_matrix(latency, 0.15, 25.0, scv=0.0)
        instance = DSPPInstance(
            datacenters=("d0", "d1"),
            locations=("v0", "v1"),
            sla_coefficients=a,
            reconfiguration_weights=np.ones(2),
            capacities=np.full(2, np.inf),
            initial_state=np.zeros((2, 2)),
        )
        demand = np.full((2, 3), 100.0)
        prices = np.ones((2, 3))
        solution = solve_dspp(instance, demand, prices)
        served = np.einsum(
            "lv,tlv->tv", instance.demand_coefficients, solution.trajectory.states
        )
        assert np.all(served >= demand.T - 1e-5)


class TestAgainstSimulation:
    def test_deterministic_service_pk_formula(self, rng):
        lam, mu = 3.0, 5.0
        result = simulate_mg1(
            lam, lambda r, n: np.full(n, 1.0 / mu), horizon=20000.0, rng=rng
        )
        assert result.mean_sojourn == pytest.approx(
            mg1_sojourn_time(lam, mu, scv=0.0), rel=0.05
        )

    def test_lognormal_service_pk_formula(self, rng):
        lam, mu, scv = 2.0, 5.0, 2.0
        sigma = math.sqrt(math.log1p(scv))
        mean_log = math.log(1.0 / mu) - sigma**2 / 2.0

        def sampler(r, n):
            return r.lognormal(mean_log, sigma, size=n)

        result = simulate_mg1(lam, sampler, horizon=60000.0, rng=rng)
        assert result.mean_sojourn == pytest.approx(
            mg1_sojourn_time(lam, mu, scv=scv), rel=0.08
        )

    def test_sampler_validation(self, rng):
        with pytest.raises(ValueError, match="positive"):
            simulate_mg1(1.0, lambda r, n: np.zeros(n), 100.0, rng)
        with pytest.raises(ValueError, match="wrong number"):
            simulate_mg1(1.0, lambda r, n: np.ones(max(0, n - 1)), 100.0, rng)


@settings(max_examples=50, deadline=None)
@given(
    mu=st.floats(1.0, 50.0),
    scv=st.floats(0.0, 5.0),
    budget_factor=st.floats(1.1, 20.0),
    sigma=st.floats(0.1, 500.0),
)
def test_mg1_coefficient_guarantees_sla(mu, scv, budget_factor, sigma):
    """Property: x = a * sigma keeps the P-K sojourn within the budget."""
    budget = budget_factor / mu
    a = mg1_sla_coefficient(0.0, budget, mu, scv=scv)
    if math.isinf(a):
        return
    per_server_load = sigma / (a * sigma)
    delay = mg1_sojourn_time(per_server_load, mu, scv)
    assert delay <= budget * (1.0 + 1e-9)
