"""Tests for the ADMM QP solver (repro.solvers.qp)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from scipy.optimize import minimize

from repro.solvers.qp import (
    QPProblem,
    QPSettings,
    QPStatus,
    solve_qp,
)


def _reference_solve(P, q, A, l, u, x0=None):
    """Solve with scipy SLSQP for cross-checking."""
    n = q.size
    constraints = []
    finite_u = np.isfinite(u)
    finite_l = np.isfinite(l)
    if finite_u.any():
        constraints.append(
            {"type": "ineq", "fun": lambda x: (u - A @ x)[finite_u]}
        )
    if finite_l.any():
        constraints.append(
            {"type": "ineq", "fun": lambda x: (A @ x - l)[finite_l]}
        )
    start = x0 if x0 is not None else np.zeros(n)
    result = minimize(
        lambda x: 0.5 * x @ P @ x + q @ x,
        start,
        jac=lambda x: P @ x + q,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    return result


class TestQPProblem:
    def test_build_symmetrizes_p(self):
        P = np.array([[2.0, 1.0], [0.0, 2.0]])
        problem = QPProblem.build(P, np.zeros(2), np.eye(2), np.zeros(2), np.ones(2))
        dense = problem.P.toarray()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == pytest.approx(0.5)

    def test_build_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            QPProblem.build(np.eye(2), np.zeros(2), np.ones((1, 3)), [0.0], [1.0])

    def test_build_rejects_p_shape(self):
        with pytest.raises(ValueError, match="P must be"):
            QPProblem.build(np.eye(3), np.zeros(2), np.eye(2), np.zeros(2), np.ones(2))

    def test_build_rejects_crossed_bounds(self):
        with pytest.raises(ValueError, match="infeasible bounds"):
            QPProblem.build(np.eye(1), np.zeros(1), np.eye(1), [2.0], [1.0])

    def test_build_rejects_bound_length(self):
        with pytest.raises(ValueError, match="row count"):
            QPProblem.build(np.eye(2), np.zeros(2), np.eye(2), [0.0], [1.0, 1.0])

    def test_objective_value(self):
        problem = QPProblem.build(
            2.0 * np.eye(2), np.array([1.0, -1.0]), np.eye(2), np.zeros(2), np.ones(2)
        )
        x = np.array([1.0, 2.0])
        assert problem.objective(x) == pytest.approx(0.5 * 2 * (1 + 4) + 1 - 2)


class TestQPSettings:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            QPSettings(alpha=2.5)

    def test_rejects_nonpositive_rho(self):
        with pytest.raises(ValueError, match="rho"):
            QPSettings(rho=0.0)


class TestUnconstrained:
    def test_no_constraints_solves_normal_equations(self):
        P = np.diag([2.0, 4.0])
        q = np.array([-2.0, -8.0])
        solution = solve_qp(P, q, np.zeros((0, 2)), np.zeros(0), np.zeros(0))
        assert solution.is_optimal
        assert solution.x == pytest.approx([1.0, 2.0], abs=1e-5)


class TestSmallProblems:
    def test_simplex_constrained(self):
        P = np.diag([2.0, 4.0, 6.0])
        q = np.array([-1.0, -2.0, 3.0])
        A = np.vstack([np.eye(3), np.ones((1, 3))])
        l = np.array([0.0, 0.0, 0.0, 1.0])
        u = np.array([np.inf, np.inf, np.inf, 1.0])
        solution = solve_qp(P, q, A, l, u)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(-0.75, abs=1e-6)
        assert solution.x.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(solution.x >= -1e-8)

    def test_equality_constraint(self):
        P = np.eye(2)
        q = np.zeros(2)
        A = np.array([[1.0, 1.0]])
        solution = solve_qp(P, q, A, [4.0], [4.0])
        assert solution.is_optimal
        assert solution.x == pytest.approx([2.0, 2.0], abs=1e-5)

    def test_active_box_bound(self):
        # min (x-3)^2 with x <= 1 -> x = 1, dual positive.
        P = np.array([[2.0]])
        q = np.array([-6.0])
        solution = solve_qp(P, q, np.eye(1), [-np.inf], [1.0])
        assert solution.is_optimal
        assert solution.x[0] == pytest.approx(1.0, abs=1e-6)
        assert solution.y[0] > 1.0  # gradient balance: 2*1 - 6 + y = 0 -> y = 4

    def test_dual_sign_convention_lower(self):
        # min (x-0)^2 with x >= 1 -> lower bound active, y negative.
        P = np.array([[2.0]])
        q = np.array([0.0])
        solution = solve_qp(P, q, np.eye(1), [1.0], [np.inf])
        assert solution.is_optimal
        assert solution.x[0] == pytest.approx(1.0, abs=1e-6)
        assert solution.y[0] < 0

    def test_sparse_inputs_accepted(self):
        P = sp.csc_matrix(np.eye(3))
        A = sp.csc_matrix(np.eye(3))
        solution = solve_qp(P, -np.ones(3), A, np.zeros(3), np.full(3, 0.5))
        assert solution.is_optimal
        assert solution.x == pytest.approx([0.5, 0.5, 0.5], abs=1e-6)


class TestAgainstScipy:
    @pytest.mark.parametrize("trial", range(10))
    def test_random_inequality_qp(self, trial):
        rng = np.random.default_rng(trial)
        n, m = 6, 10
        M = rng.normal(size=(n, n))
        P = M @ M.T + 0.5 * np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(m, n))
        x0 = rng.normal(size=n)
        mid = A @ x0
        l = mid - rng.uniform(0.1, 1.0, m)
        u = mid + rng.uniform(0.1, 1.0, m)
        ours = solve_qp(P, q, A, l, u)
        reference = _reference_solve(P, q, A, l, u, x0)
        assert ours.is_optimal
        assert ours.objective == pytest.approx(reference.fun, abs=1e-4, rel=1e-4)

    @pytest.mark.parametrize("trial", range(5))
    def test_random_mixed_equality_qp(self, trial):
        rng = np.random.default_rng(100 + trial)
        n = 5
        M = rng.normal(size=(n, n))
        P = M @ M.T + np.eye(n)
        q = rng.normal(size=n)
        a_eq = rng.normal(size=(1, n))
        x0 = rng.normal(size=n)
        b = float((a_eq @ x0)[0])
        A = np.vstack([a_eq, np.eye(n)])
        l = np.concatenate([[b], x0 - 2.0])
        u = np.concatenate([[b], x0 + 2.0])
        ours = solve_qp(P, q, A, l, u)
        assert ours.is_optimal
        assert float((a_eq @ ours.x)[0]) == pytest.approx(b, abs=1e-5)


class TestScaling:
    def test_badly_scaled_problem_converges(self):
        # Mixed magnitudes that stall unscaled ADMM.
        rng = np.random.default_rng(7)
        n = 8
        scales = 10.0 ** rng.uniform(-3, 3, size=n)
        P = np.diag(scales)
        q = -scales * rng.uniform(0.5, 2.0, size=n)
        A = np.eye(n) * 10.0 ** rng.uniform(-2, 2, size=n)[:, None]
        l = np.zeros(n)
        u = np.full(n, 1e4)
        solution = solve_qp(P, q, A, l, u)
        assert solution.is_optimal

    def test_scaling_matches_unscaled_answer(self):
        P = np.diag([2.0, 4.0])
        q = np.array([-2.0, -8.0])
        A = np.eye(2)
        l = np.zeros(2)
        u = np.array([0.5, 10.0])
        scaled = solve_qp(P, q, A, l, u, settings=QPSettings(scaling_iterations=10))
        unscaled = solve_qp(P, q, A, l, u, settings=QPSettings(scaling_iterations=0))
        assert scaled.is_optimal and unscaled.is_optimal
        assert scaled.x == pytest.approx(unscaled.x, abs=1e-5)
        assert scaled.y == pytest.approx(unscaled.y, abs=1e-4)


class TestWarmStart:
    def test_warm_start_reduces_iterations(self):
        rng = np.random.default_rng(3)
        n, m = 10, 15
        M = rng.normal(size=(n, n))
        P = M @ M.T + np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(m, n))
        x0 = rng.normal(size=n)
        l = A @ x0 - 1.0
        u = A @ x0 + 1.0
        cold = solve_qp(P, q, A, l, u)
        warm = solve_qp(P, q + 0.01, A, l, u, warm_start=cold)
        assert warm.is_optimal
        assert warm.iterations <= cold.iterations

    def test_warm_start_with_wrong_shape_is_ignored(self):
        base = solve_qp(np.eye(2), -np.ones(2), np.eye(2), np.zeros(2), np.ones(2))
        other = solve_qp(
            np.eye(3), -np.ones(3), np.eye(3), np.zeros(3), np.ones(3), warm_start=base
        )
        assert other.is_optimal
        assert other.x == pytest.approx([1.0, 1.0, 1.0], abs=1e-6)


class TestInfeasibility:
    def test_primal_infeasible_detected(self):
        # x <= 1 and x >= 2 simultaneously.
        A = np.array([[1.0], [1.0]])
        solution = solve_qp(np.eye(1), np.zeros(1), A, [-np.inf, 2.0], [1.0, np.inf])
        assert solution.status is QPStatus.PRIMAL_INFEASIBLE

    def test_dual_infeasible_detected(self):
        # Unbounded below: min -x with x >= 0 only.
        solution = solve_qp(
            np.zeros((1, 1)), np.array([-1.0]), np.eye(1), [0.0], [np.inf]
        )
        assert solution.status is QPStatus.DUAL_INFEASIBLE

    def test_infeasible_objective_is_nan(self):
        A = np.array([[1.0], [1.0]])
        solution = solve_qp(np.eye(1), np.zeros(1), A, [-np.inf, 2.0], [1.0, np.inf])
        assert np.isnan(solution.objective)


class TestPolish:
    def test_polish_tightens_residuals(self):
        P = np.diag([2.0, 4.0, 6.0])
        q = np.array([-1.0, -2.0, 3.0])
        A = np.vstack([np.eye(3), np.ones((1, 3))])
        l = np.array([0.0, 0.0, 0.0, 1.0])
        u = np.array([np.inf, np.inf, np.inf, 1.0])
        polished = solve_qp(P, q, A, l, u, settings=QPSettings(polish=True))
        rough = solve_qp(P, q, A, l, u, settings=QPSettings(polish=False))
        assert polished.is_optimal and rough.is_optimal
        assert polished.primal_residual <= rough.primal_residual + 1e-12
        assert polished.dual_residual <= rough.dual_residual + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 6),
)
def test_solution_satisfies_kkt_on_random_box_qps(seed, n):
    """Property: every returned optimum satisfies bounds and stationarity."""
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(n, n))
    P = M @ M.T + 0.5 * np.eye(n)
    q = rng.normal(size=n)
    A = np.eye(n)
    l = rng.uniform(-2.0, 0.0, n)
    u = l + rng.uniform(0.5, 3.0, n)
    solution = solve_qp(P, q, A, l, u)
    assert solution.is_optimal
    assert np.all(solution.x >= l - 1e-5)
    assert np.all(solution.x <= u + 1e-5)
    stationarity = P @ solution.x + q + A.T @ solution.y
    assert np.max(np.abs(stationarity)) < 1e-4
