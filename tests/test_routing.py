"""Tests for the routing package (eq. 13 policy + router)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.sla import sla_coefficient_matrix
from repro.routing.proportional import proportional_assignment
from repro.routing.router import RequestRouter


class TestProportionalAssignment:
    def test_columns_sum_to_demand(self):
        allocation = np.array([[2.0, 1.0], [4.0, 3.0]])
        coeff = np.array([[10.0, 5.0], [10.0, 5.0]])
        demand = np.array([30.0, 12.0])
        sigma = proportional_assignment(allocation, demand, coeff)
        assert sigma.sum(axis=0) == pytest.approx(demand)

    def test_eq13_weights(self):
        # sigma^{lv} = D_v * (x/a) / sum(x/a); with coeff = 1/a.
        allocation = np.array([[1.0], [3.0]])
        coeff = np.array([[2.0], [2.0]])
        sigma = proportional_assignment(allocation, np.array([8.0]), coeff)
        assert sigma[:, 0] == pytest.approx([2.0, 6.0])

    def test_zero_demand_zero_assignment(self):
        allocation = np.ones((2, 1))
        coeff = np.ones((2, 1))
        sigma = proportional_assignment(allocation, np.array([0.0]), coeff)
        assert sigma == pytest.approx(np.zeros((2, 1)))

    def test_unroutable_location_raises(self):
        allocation = np.zeros((2, 1))
        coeff = np.ones((2, 1))
        with pytest.raises(ValueError, match="no service capacity"):
            proportional_assignment(allocation, np.array([1.0]), coeff)

    def test_unusable_pair_gets_nothing(self):
        allocation = np.array([[5.0], [5.0]])
        coeff = np.array([[0.0], [1.0]])  # pair (0, v) cannot meet the SLA
        sigma = proportional_assignment(allocation, np.array([4.0]), coeff)
        assert sigma[0, 0] == 0.0
        assert sigma[1, 0] == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="differ"):
            proportional_assignment(np.ones((2, 1)), np.ones(1), np.ones((1, 1)))
        with pytest.raises(ValueError, match="length"):
            proportional_assignment(np.ones((2, 2)), np.ones(1), np.ones((2, 2)))
        with pytest.raises(ValueError, match="nonnegative"):
            proportional_assignment(-np.ones((1, 1)), np.ones(1), np.ones((1, 1)))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), L=st.integers(1, 4), V=st.integers(1, 4))
def test_feasible_split_always_meets_sla(seed, L, V):
    """If eq. 12 holds, the eq. 13 split keeps every routed pair within its
    per-server budget ``x >= a * sigma`` — the paper's feasibility claim."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.05, 0.5, size=(L, V))
    coeff = 1.0 / a
    demand = rng.uniform(0.0, 50.0, size=V)
    # Build an allocation satisfying eq. 12 with 10% headroom.
    allocation = np.zeros((L, V))
    for v in range(V):
        allocation[:, v] = a[:, v] * demand[v] * 1.1 / L
    sigma = proportional_assignment(allocation, demand, coeff)
    assert sigma.sum(axis=0) == pytest.approx(demand, rel=1e-9, abs=1e-9)
    routed = sigma > 1e-12
    assert np.all(allocation[routed] >= (a * sigma)[routed] * (1 - 1e-9))


class TestRequestRouter:
    @pytest.fixture
    def router(self):
        latency = np.array([[0.01, 0.05], [0.05, 0.01]])
        coeff = 1.0 / sla_coefficient_matrix(latency, 0.15, 25.0)
        return RequestRouter(
            network_latency=latency,
            demand_coefficients=coeff,
            service_rate=25.0,
            max_latency=0.15,
        )

    def test_routes_within_sla_when_feasible(self, router):
        coeff = router.demand_coefficients
        demand = np.array([40.0, 60.0])
        a = 1.0 / coeff
        allocation = a * demand[None, :] * 0.6  # both DCs share, 20% headroom
        router.update_allocation(allocation)
        decision = router.route(demand)
        assert decision.all_sla_satisfied
        assert decision.unserved == pytest.approx(np.zeros(2), abs=1e-9)
        assert decision.assignment.sum(axis=0) == pytest.approx(demand)

    def test_overload_clipped_and_reported(self, router):
        coeff = router.demand_coefficients
        a = 1.0 / coeff
        allocation = a * np.array([[10.0, 10.0], [10.0, 10.0]])
        router.update_allocation(allocation)
        decision = router.route(np.array([100.0, 100.0]))
        assert decision.unserved.sum() > 0
        # What was served still meets the SLA.
        assert decision.all_sla_satisfied

    def test_latency_nan_where_unrouted(self, router):
        router.update_allocation(np.zeros((2, 2)))
        decision = router.route(np.zeros(2))
        assert np.all(np.isnan(decision.latency))

    def test_update_allocation_validation(self, router):
        with pytest.raises(ValueError):
            router.update_allocation(np.ones((3, 2)))
        with pytest.raises(ValueError):
            router.update_allocation(-np.ones((2, 2)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RequestRouter(np.ones((2, 2)), np.ones((1, 2)), 1.0, 1.0)
        with pytest.raises(ValueError):
            RequestRouter(np.ones((1, 1)), np.ones((1, 1)), 0.0, 1.0)
