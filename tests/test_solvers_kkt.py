"""Tests for repro.solvers.kkt (residuals + polish)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.kkt import KKTResiduals, kkt_residuals, polish_solution
from repro.solvers.qp import QPProblem, QPSettings, solve_qp


def _box_problem():
    # min (x0-2)^2 + (x1-2)^2 s.t. 0 <= x <= 1 (both upper bounds active).
    return QPProblem.build(
        2.0 * np.eye(2), np.array([-4.0, -4.0]), np.eye(2), np.zeros(2), np.ones(2)
    )


class TestResiduals:
    def test_exact_optimum_has_tiny_residuals(self):
        problem = _box_problem()
        x = np.ones(2)
        y = np.array([2.0, 2.0])  # 2x - 4 + y = 0 at x=1
        res = kkt_residuals(problem, x, y)
        assert res.worst < 1e-12

    def test_primal_violation_measured(self):
        problem = _box_problem()
        res = kkt_residuals(problem, np.array([1.5, 0.5]), np.zeros(2))
        assert res.primal == pytest.approx(0.5)

    def test_complementarity_violation_measured(self):
        problem = _box_problem()
        # Positive multiplier on a slack (not active) constraint.
        res = kkt_residuals(problem, np.array([0.5, 0.5]), np.array([2.0, 0.0]))
        assert res.complementarity == pytest.approx(1.0)  # y * (u - ax) = 2 * 0.5

    def test_worst_is_max(self):
        res = KKTResiduals(primal=0.1, dual=0.3, complementarity=0.2)
        assert res.worst == pytest.approx(0.3)


class TestPolish:
    def test_polish_marks_flag_and_improves(self):
        problem = _box_problem()
        rough = solve_qp(
            problem.P,
            problem.q,
            problem.A,
            problem.l,
            problem.u,
            settings=QPSettings(polish=False, eps_abs=1e-4, eps_rel=1e-4),
        )
        refined = polish_solution(problem, rough)
        old = kkt_residuals(problem, rough.x, rough.y)
        new = kkt_residuals(problem, refined.x, refined.y)
        assert new.worst <= old.worst

    def test_polish_no_active_constraints_returns_input(self):
        # Interior optimum: nothing active, polish is a no-op.
        problem = QPProblem.build(
            2.0 * np.eye(1), np.array([-1.0]), np.eye(1), [-10.0], [10.0]
        )
        solution = solve_qp(
            problem.P, problem.q, problem.A, problem.l, problem.u,
            settings=QPSettings(polish=False),
        )
        refined = polish_solution(problem, solution)
        assert refined.polished is False
