"""Tests for failure injection, scenario persistence, and the report
generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.mpc import MPCConfig, MPCController
from repro.core.instance import DSPPInstance
from repro.io import load_scenario, save_scenario
from repro.prediction.oracle import OraclePredictor
from repro.report import ReportOptions, _markdown_table
from repro.simulation.failures import (
    OutageEvent,
    capacity_schedule,
    run_closed_loop_with_failures,
)
from repro.simulation.scenario import build_paper_scenario, build_small_scenario


class TestOutageEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutageEvent(0, 0, duration=0)
        with pytest.raises(ValueError):
            OutageEvent(0, 0, 1, remaining_fraction=1.0)
        with pytest.raises(ValueError):
            OutageEvent(-1, 0, 1)

    def test_activity_window(self):
        event = OutageEvent(0, start_period=3, duration=2)
        assert not event.is_active(2)
        assert event.is_active(3)
        assert event.is_active(4)
        assert not event.is_active(5)


class TestCapacitySchedule:
    def test_applies_fraction(self):
        schedule = capacity_schedule(
            np.array([100.0, 50.0]),
            5,
            [OutageEvent(0, 1, 2, remaining_fraction=0.25)],
        )
        assert schedule[0] == pytest.approx([100.0, 50.0])
        assert schedule[1] == pytest.approx([25.0, 50.0])
        assert schedule[2] == pytest.approx([25.0, 50.0])
        assert schedule[3] == pytest.approx([100.0, 50.0])

    def test_overlapping_events_compound(self):
        schedule = capacity_schedule(
            np.array([100.0]),
            3,
            [
                OutageEvent(0, 0, 3, remaining_fraction=0.5),
                OutageEvent(0, 1, 1, remaining_fraction=0.5),
            ],
        )
        assert schedule[1, 0] == pytest.approx(25.0)

    def test_unknown_datacenter(self):
        with pytest.raises(IndexError):
            capacity_schedule(np.array([1.0]), 2, [OutageEvent(3, 0, 1)])

    def test_outage_truncated_at_schedule_end(self):
        # Duration runs past the schedule: every period from start on is hit.
        schedule = capacity_schedule(
            np.array([100.0]), 4, [OutageEvent(0, 2, 10, remaining_fraction=0.5)]
        )
        assert schedule[:, 0] == pytest.approx([100.0, 100.0, 50.0, 50.0])

    def test_outage_entirely_after_schedule_is_noop(self):
        schedule = capacity_schedule(
            np.array([100.0]), 3, [OutageEvent(0, 5, 2, remaining_fraction=0.0)]
        )
        assert schedule == pytest.approx(np.full((3, 1), 100.0))

    def test_outage_at_period_zero_and_exact_last_period(self):
        schedule = capacity_schedule(
            np.array([100.0]),
            4,
            [
                OutageEvent(0, 0, 1, remaining_fraction=0.0),
                OutageEvent(0, 3, 1, remaining_fraction=0.25),
            ],
        )
        assert schedule[:, 0] == pytest.approx([0.0, 100.0, 100.0, 25.0])

    def test_zero_periods_gives_empty_schedule(self):
        schedule = capacity_schedule(np.array([100.0, 50.0]), 0, [OutageEvent(0, 0, 1)])
        assert schedule.shape == (0, 2)


class TestFailureLoop:
    @pytest.fixture
    def setup(self):
        instance = DSPPInstance(
            datacenters=("a", "b"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.1]]),
            reconfiguration_weights=np.array([0.5, 0.5]),
            capacities=np.array([30.0, 30.0]),
            initial_state=np.zeros((2, 1)),
        )
        K = 10
        demand = np.full((1, K), 150.0)
        prices = np.vstack([np.ones(K), 1.5 * np.ones(K)])  # a cheaper
        return instance, demand, prices

    def _controller(self, instance, demand, prices):
        return MPCController(
            instance,
            OraclePredictor(demand),
            OraclePredictor(prices),
            MPCConfig(window=3, slack_penalty=50.0),
        )

    def test_no_outage_matches_plain_loop_service(self, setup):
        instance, demand, prices = setup
        result = run_closed_loop_with_failures(
            self._controller(instance, demand, prices), demand, prices, []
        )
        assert result.total_unmet_demand == pytest.approx(0.0, abs=1e-5)

    def test_outage_moves_load_to_survivor(self, setup):
        instance, demand, prices = setup
        outage = OutageEvent(0, start_period=4, duration=3, remaining_fraction=0.0)
        result = run_closed_loop_with_failures(
            self._controller(instance, demand, prices), demand, prices, [outage]
        )
        servers = result.servers_per_datacenter()  # (K-1, L)
        # During the outage (serving periods 4..6) DC a holds nothing and
        # DC b carries the demand it can.
        assert servers[3, 0] == pytest.approx(0.0, abs=1e-6)
        assert servers[4, 0] == pytest.approx(0.0, abs=1e-6)
        assert servers[3, 1] > 10.0
        # After recovery, load starts migrating back to the cheap site
        # (gradually — the quadratic penalty damps the return).
        assert servers[-1, 0] > servers[5, 0]
        assert servers[-1, 0] > servers[-2, 0] - 1e-9

    def test_full_outage_of_both_sites_reports_unmet(self, setup):
        instance, demand, prices = setup
        outages = [
            OutageEvent(0, 4, 2, remaining_fraction=0.0),
            OutageEvent(1, 4, 2, remaining_fraction=0.0),
        ]
        result = run_closed_loop_with_failures(
            self._controller(instance, demand, prices), demand, prices, outages
        )
        assert result.unmet_demand[3].sum() > 100.0

    def test_partial_outage_degrades_gracefully(self, setup):
        instance, demand, prices = setup
        outage = OutageEvent(0, 4, 2, remaining_fraction=0.5)
        result = run_closed_loop_with_failures(
            self._controller(instance, demand, prices), demand, prices, [outage]
        )
        servers = result.servers_per_datacenter()
        assert servers[3, 0] <= 15.0 + 1e-6  # half of 30

    def test_rejects_bad_demand_shape(self, setup):
        instance, demand, prices = setup
        controller = self._controller(instance, demand, prices)
        with pytest.raises(ValueError, match=r"demand must be \(1, K\)"):
            run_closed_loop_with_failures(
                controller, np.vstack([demand, demand]), prices, []
            )

    def test_rejects_mismatched_prices(self, setup):
        instance, demand, prices = setup
        controller = self._controller(instance, demand, prices)
        with pytest.raises(ValueError, match="prices must be"):
            run_closed_loop_with_failures(controller, demand, prices[:, :-1], [])

    def test_full_outage_evicts_stranded_servers(self, setup):
        # Servers standing at a fully failed site must not survive into the
        # planned state: during the outage the failed DC's row is (near) zero.
        instance, demand, prices = setup
        outage = OutageEvent(0, 3, 3, remaining_fraction=0.0)
        result = run_closed_loop_with_failures(
            self._controller(instance, demand, prices), demand, prices, [outage]
        )
        states = result.trajectory.states
        assert states[1, 0].sum() > 1.0  # DC 0 carries load before the outage
        for k in (2, 3, 4):  # planned periods k+1 in the outage window
            assert states[k, 0].sum() == pytest.approx(0.0, abs=1e-6)

    def test_capacity_recovers_after_outage(self, setup):
        instance, demand, prices = setup
        outage = OutageEvent(0, 3, 2, remaining_fraction=0.0)
        result = run_closed_loop_with_failures(
            self._controller(instance, demand, prices), demand, prices, [outage]
        )
        # After recovery the cheap DC is used again and demand is met.
        assert result.trajectory.states[-1, 0].sum() > 1.0
        assert result.unmet_demand[-1].sum() == pytest.approx(0.0, abs=1e-5)


class TestScenarioIO:
    def test_round_trip_small(self, tmp_path):
        scenario = build_small_scenario(num_periods=6, seed=3)
        path = tmp_path / "scenario.npz"
        save_scenario(path, scenario)
        loaded = load_scenario(path)
        assert loaded.instance.datacenters == scenario.instance.datacenters
        assert loaded.instance.sla_coefficients == pytest.approx(
            scenario.instance.sla_coefficients
        )
        assert loaded.demand == pytest.approx(scenario.demand)
        assert loaded.prices == pytest.approx(scenario.prices)
        assert loaded.sla.max_latency == scenario.sla.max_latency
        assert loaded.vm_type.name == scenario.vm_type.name

    def test_round_trip_paper_with_wholesale(self, tmp_path):
        scenario = build_paper_scenario(num_periods=4, total_peak_rate=300.0)
        path = tmp_path / "paper.npz"
        save_scenario(path, scenario)
        loaded = load_scenario(path)
        assert set(loaded.wholesale_traces) == set(scenario.wholesale_traces)
        for label in scenario.wholesale_traces:
            assert loaded.wholesale_traces[label].prices == pytest.approx(
                scenario.wholesale_traces[label].prices
            )

    def test_loaded_scenario_is_runnable(self, tmp_path):
        from repro.control.loop import run_closed_loop

        scenario = build_small_scenario(num_periods=6, seed=1)
        path = tmp_path / "scenario.npz"
        save_scenario(path, scenario)
        loaded = load_scenario(path)
        controller = MPCController(
            loaded.instance,
            OraclePredictor(loaded.demand),
            OraclePredictor(loaded.prices),
            MPCConfig(window=2),
        )
        result = run_closed_loop(controller, loaded.demand, loaded.prices)
        assert result.total_cost > 0

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError, match="not a scenario"):
            load_scenario(path)


class TestReport:
    def test_markdown_table_rendering(self):
        from repro.experiments.common import FigureResult

        result = FigureResult(
            figure="figX",
            title="demo",
            x_label="k",
            x=np.array([1, 2, 3]),
            series={"y": np.array([1.5, 2.5, 3.5])},
        )
        table = _markdown_table(result, max_rows=2)
        assert "| k | y |" in table
        assert "1.500" in table
        assert "more rows omitted" in table

    def test_report_options_defaults(self):
        options = ReportOptions()
        assert options.quick is True
