"""Tests for the resident placement service (repro.service)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import sanitize
from repro.control.mpc import MPCConfig, MPCController, NonFiniteObservationError
from repro.prediction.naive import LastValuePredictor
from repro.service import (
    LADDER_RUNGS,
    FaultEvent,
    FaultPlan,
    LadderConfig,
    PlacementService,
    ServiceConfig,
    list_checkpoints,
    make_fault_plan,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.scenario import build_small_scenario


def _controller(instance, **config_kwargs):
    defaults = dict(window=3, slack_penalty=1e3, reuse_workspace=True)
    defaults.update(config_kwargs)
    return MPCController(
        instance,
        LastValuePredictor(instance.num_locations),
        LastValuePredictor(instance.num_datacenters),
        MPCConfig(**defaults),
    )


class TestImputationPolicy:
    """The MPCController telemetry-repair satellite, both modes."""

    def test_strict_mode_raises_typed_error_on_nan(self):
        scenario = build_small_scenario(num_periods=6, seed=0)
        controller = _controller(scenario.instance, imputation="strict")
        controller.step(scenario.demand[:, 0], scenario.prices[:, 0])
        bad = scenario.demand[:, 1].copy()
        bad[0] = np.nan
        # With the sanitizer armed (as in CI) its located SanitizeError
        # fires first; unarmed, the controller's typed error does.
        expected = (
            sanitize.SanitizeError
            if sanitize.enabled()
            else NonFiniteObservationError
        )
        with pytest.raises(expected):
            controller.step(bad, scenario.prices[:, 1])

    def test_carry_forward_repairs_and_flags(self):
        scenario = build_small_scenario(num_periods=6, seed=0)
        controller = _controller(scenario.instance, imputation="carry_forward")
        controller.step(scenario.demand[:, 0], scenario.prices[:, 0])
        bad = scenario.demand[:, 1].copy()
        bad[0] = np.nan
        step = controller.step(bad, scenario.prices[:, 1])
        assert step.imputed_demand is not None
        assert bool(step.imputed_demand[0])
        assert not step.imputed_demand[1:].any()
        assert step.imputed_prices is None
        assert np.isfinite(step.new_state).all()

    def test_carried_value_is_the_last_finite_observation(self):
        scenario = build_small_scenario(num_periods=6, seed=1)
        strict = _controller(scenario.instance, imputation="strict")
        repaired = _controller(scenario.instance, imputation="carry_forward")
        strict.step(scenario.demand[:, 0], scenario.prices[:, 0])
        repaired.step(scenario.demand[:, 0], scenario.prices[:, 0])
        # Feed NaN everywhere: carry-forward must reproduce the step the
        # strict controller takes when fed the previous (finite) sample.
        gap_demand = np.full_like(scenario.demand[:, 1], np.nan)
        gap_prices = np.full_like(scenario.prices[:, 1], np.nan)
        expected = strict.step(scenario.demand[:, 0], scenario.prices[:, 0])
        actual = repaired.step(gap_demand, gap_prices)
        assert np.array_equal(expected.new_state, actual.new_state)
        assert actual.imputed_demand is not None
        assert actual.imputed_demand.all()
        assert actual.imputed_prices is not None
        assert actual.imputed_prices.all()

    def test_carry_forward_without_history_raises(self):
        scenario = build_small_scenario(num_periods=4, seed=0)
        controller = _controller(scenario.instance, imputation="carry_forward")
        gap = np.full_like(scenario.demand[:, 0], np.nan)
        with pytest.raises(NonFiniteObservationError, match="history"):
            controller.step(gap, scenario.prices[:, 0])


class TestServiceLoop:
    def test_fault_free_service_matches_engine(self):
        """Without faults the service is the engine plus checkpoints."""
        scenario = build_small_scenario(num_periods=7, seed=5)
        engine = SimulationEngine(
            scenario,
            _controller(scenario.instance, imputation="carry_forward"),
        )
        expected = engine.run()
        service = PlacementService(scenario, ServiceConfig(window=3))
        result = service.run()
        assert result is not None
        assert np.array_equal(result.states, expected.states)
        assert np.array_equal(result.controls, expected.controls)
        assert result.summary == expected.summary
        assert result.terminal_rungs == ("warm",) * 6
        assert len(result.log) == 0

    def test_run_until_stops_early_and_reports_none(self, tmp_path):
        scenario = build_small_scenario(num_periods=6, seed=2)
        service = PlacementService(scenario, checkpoint_dir=tmp_path)
        assert service.run(until=2) is None
        assert service.period == 2
        assert len(list_checkpoints(tmp_path)) > 0

    def test_restore_is_bitwise_identical(self, tmp_path):
        scenario = build_small_scenario(num_periods=8, seed=9)
        config = ServiceConfig(window=2)
        clean = PlacementService(
            scenario, config, checkpoint_dir=tmp_path / "a"
        ).run()
        assert clean is not None
        crashed = PlacementService(scenario, config, checkpoint_dir=tmp_path / "b")
        crashed.run(until=4)
        del crashed
        resumed = PlacementService.restore(tmp_path / "b")
        assert any(e.outcome == "restored" for e in resumed.log.events)
        result = resumed.run()
        assert result is not None
        assert np.array_equal(clean.states, result.states)
        assert np.array_equal(clean.controls, result.controls)

    def test_restore_falls_back_past_corrupt_generation(self, tmp_path):
        scenario = build_small_scenario(num_periods=6, seed=3)
        service = PlacementService(scenario, checkpoint_dir=tmp_path)
        clean = service.run()
        assert clean is not None
        newest = list_checkpoints(tmp_path)[-1]
        newest.write_bytes(newest.read_bytes()[:40])
        resumed = PlacementService.restore(tmp_path)
        fallbacks = [
            e for e in resumed.log.events if e.outcome == "checkpoint_fallback"
        ]
        assert len(fallbacks) == 1
        assert newest.name in fallbacks[0].detail
        # The fallback generation is one period older; re-running from it
        # reproduces the identical trajectory.
        result = resumed.run()
        assert result is not None
        assert np.array_equal(clean.states, result.states)


class TestDegradationLadder:
    def test_squeeze_escalates_to_named_rung(self):
        scenario = build_small_scenario(num_periods=6, seed=4)
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent("deadline_squeeze", period=1, payload=2),
                FaultEvent("deadline_squeeze", period=3, payload=3),
            ),
        )
        result = PlacementService(scenario, fault_plan=plan).run()
        assert result is not None
        assert result.terminal_rungs[1] == "sparse"
        assert result.terminal_rungs[3] == "hold"
        held = [e for e in result.log.events_for(3) if e.outcome == "held"]
        assert len(held) == 1 and "slack" in held[0].detail

    def test_hold_keeps_previous_placement(self):
        scenario = build_small_scenario(num_periods=6, seed=4)
        plan = FaultPlan(
            seed=0, events=(FaultEvent("deadline_squeeze", period=2, payload=3),)
        )
        result = PlacementService(scenario, fault_plan=plan).run()
        assert result is not None
        assert np.array_equal(result.controls[2], np.zeros_like(result.controls[2]))
        assert np.array_equal(result.states[2], result.states[1])

    def test_every_injected_fault_reaches_a_terminal_rung(self):
        scenario = build_small_scenario(num_periods=8, seed=6)
        for fault_seed in range(5):
            plan = make_fault_plan(fault_seed, scenario.num_periods, rate=0.8)
            result = PlacementService(scenario, fault_plan=plan).run()
            assert result is not None
            assert len(result.terminal_rungs) == scenario.num_periods - 1
            assert all(r in LADDER_RUNGS for r in result.terminal_rungs)

    def test_telemetry_gap_is_imputed_and_logged(self):
        scenario = build_small_scenario(num_periods=6, seed=4)
        plan = FaultPlan(seed=1, events=(FaultEvent("telemetry_gap", period=2),))
        result = PlacementService(scenario, fault_plan=plan).run()
        assert result is not None
        outcomes = {e.outcome for e in result.log.events_for(2)}
        assert {"fault", "imputed"} <= outcomes

    def test_real_deadline_forces_hold(self):
        scenario = build_small_scenario(num_periods=5, seed=4)
        config = ServiceConfig(ladder=LadderConfig(deadline_s=1e-9))
        result = PlacementService(scenario, config).run()
        assert result is not None
        # The clock expires before every rung, so each period holds.
        assert set(result.terminal_rungs) == {"hold"}


class TestServeCLIEndToEnd:
    def _run(self, *args: str, timeout: float = 300.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", *args],
            capture_output=True,
            text=True,
            timeout=timeout,
            env=env,
        )

    def test_sigkill_mid_horizon_then_resume_is_bitwise(self, tmp_path):
        """The acceptance scenario: kill -9 a live serve, resume, compare."""
        common = ["--periods", "8", "--seed", "1", "--checkpoint-dir"]
        clean_out = tmp_path / "clean.json"
        proc = self._run(
            *common, str(tmp_path / "clean"), "--out", str(clean_out)
        )
        assert proc.returncode == 0, proc.stderr
        clean = json.loads(clean_out.read_text())

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        crash_dir = tmp_path / "crash"
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                *common, str(crash_dir),
                "--throttle", "0.4",
                "--out", str(tmp_path / "never.json"),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(list_checkpoints(crash_dir)) >= 2:
                    break
                if victim.poll() is not None:
                    pytest.fail("serve exited before it could be killed")
                time.sleep(0.05)
            else:
                pytest.fail("no checkpoint generation appeared in time")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.wait(timeout=30.0)
        assert not (tmp_path / "never.json").exists()

        resumed_out = tmp_path / "resumed.json"
        proc = self._run(
            "--checkpoint-dir", str(crash_dir), "--resume",
            "--out", str(resumed_out),
        )
        assert proc.returncode == 0, proc.stderr
        resumed = json.loads(resumed_out.read_text())
        assert resumed["resumed"] is True
        assert resumed["states_sha256"] == clean["states_sha256"]
        assert resumed["controls_sha256"] == clean["controls_sha256"]
        assert resumed["terminal_rungs"] == clean["terminal_rungs"]

    def test_chaos_run_writes_degradation_log(self, tmp_path):
        log_path = tmp_path / "degradation.json"
        proc = self._run(
            "--periods", "6", "--fault-seed", "5", "--fault-rate", "0.8",
            "--degradation-log", str(log_path),
            "--out", str(tmp_path / "out.json"),
        )
        assert proc.returncode == 0, proc.stderr
        events = json.loads(log_path.read_text())
        assert isinstance(events, list) and events
        assert {"period", "rung", "outcome", "detail", "attempt"} <= set(events[0])

    def test_resume_requires_checkpoint_dir(self):
        proc = self._run("--resume")
        assert proc.returncode == 2
