"""Tests for the MPC window auto-tuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.tuning import select_window
from repro.core.instance import DSPPInstance
from repro.experiments.fig9_horizon_cost_volatile import volatile_traces
from repro.prediction.ar import ARPredictor
from repro.prediction.naive import LastValuePredictor


@pytest.fixture
def instance():
    return DSPPInstance(
        datacenters=("dc",),
        locations=("v",),
        sla_coefficients=np.array([[0.1]]),
        reconfiguration_weights=np.array([20.0]),
        capacities=np.array([np.inf]),
        initial_state=np.zeros((1, 1)),
    )


class TestSelectWindow:
    def test_constant_inputs_prefer_long_windows(self, instance):
        # The Figure 10 regime: ramp from zero under constant inputs —
        # longer look-ahead plans the ramp better.
        K = 16
        demand = np.full((1, K), 150.0)
        prices = np.ones((1, K))
        selection = select_window(
            instance,
            demand,
            prices,
            lambda: (LastValuePredictor(1), LastValuePredictor(1)),
            candidates=(1, 2, 4, 8),
            slack_penalty=6.0,
        )
        assert selection.best_window >= 4
        # Scores non-increasing in window here.
        assert selection.score_of(8) <= selection.score_of(1)

    def test_volatile_inputs_prefer_short_windows(self, instance):
        # The Figure 9 regime: AR forecasts on volatile traces.
        rng = np.random.default_rng(0)
        demand, prices = volatile_traces(48, 1, 1, rng)
        start = demand[0, 0] * 0.1
        seeded = instance.with_initial_state(np.array([[start]]))
        selection = select_window(
            seeded,
            demand,
            prices,
            lambda: (ARPredictor(1, order=2), ARPredictor(1, order=2)),
            candidates=(1, 2, 4, 8),
            slack_penalty=50.0,
        )
        assert selection.best_window <= 2

    def test_tie_breaks_to_shorter_window(self, instance):
        # With a warm start at the static optimum and constant inputs,
        # every window scores identically -> the shortest must win.
        warm = instance.with_initial_state(np.array([[15.0]]))
        demand = np.full((1, 8), 150.0)
        prices = np.ones((1, 8))
        selection = select_window(
            warm,
            demand,
            prices,
            lambda: (LastValuePredictor(1), LastValuePredictor(1)),
            candidates=(4, 1, 2),
            slack_penalty=10.0,
        )
        assert selection.best_window == 1

    def test_scores_align_with_candidates(self, instance):
        demand = np.full((1, 6), 100.0)
        prices = np.ones((1, 6))
        selection = select_window(
            instance,
            demand,
            prices,
            lambda: (LastValuePredictor(1), LastValuePredictor(1)),
            candidates=(2, 3),
            slack_penalty=10.0,
        )
        assert selection.scores.shape == (2,)
        assert selection.score_of(2) == selection.scores[0]

    def test_validation(self, instance):
        demand = np.full((1, 4), 10.0)
        prices = np.ones((1, 4))
        factory = lambda: (LastValuePredictor(1), LastValuePredictor(1))
        with pytest.raises(ValueError, match="at least one"):
            select_window(instance, demand, prices, factory, candidates=())
        with pytest.raises(ValueError, match=">= 1"):
            select_window(instance, demand, prices, factory, candidates=(0,))
