"""Tests for the runtime shape-contract layer (:mod:`repro.contracts`).

The decorator must be a literal no-op when ``REPRO_CONTRACTS`` is unset
(same function object, so zero call overhead) and must raise readable
:class:`ShapeContractError` diagnostics — naming the argument, the
expected shape under the current symbol bindings, and the actual shape —
when enabled.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.contracts import ShapeContractError, check_shapes, contracts_enabled


@pytest.fixture
def enabled(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("REPRO_CONTRACTS", "1")


@pytest.fixture
def disabled(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)


class TestDisabled:
    def test_decorator_returns_function_unchanged(self, disabled: None) -> None:
        def f(x: np.ndarray) -> np.ndarray:
            return x

        assert check_shapes("x:(n,)")(f) is f

    def test_no_checking_happens(self, disabled: None) -> None:
        @check_shapes("x:(3,)")
        def f(x: np.ndarray) -> np.ndarray:
            return x

        f(np.zeros(7))  # wrong shape, but contracts are off

    def test_malformed_specs_rejected_even_when_disabled(self, disabled: None) -> None:
        with pytest.raises(ValueError, match="invalid shape spec"):
            check_shapes("x:oops")

        with pytest.raises(ValueError, match="no parameter 'y'"):

            @check_shapes("y:(n,)")
            def f(x: np.ndarray) -> np.ndarray:
                return x

    def test_enabled_flag_reflects_environment(self, disabled: None) -> None:
        assert not contracts_enabled()
        os.environ["REPRO_CONTRACTS"] = "1"
        try:
            assert contracts_enabled()
        finally:
            del os.environ["REPRO_CONTRACTS"]


class TestEnabled:
    def test_matching_shapes_pass_through(self, enabled: None) -> None:
        @check_shapes("P:(n,n)", "q:(n,)", ret="(n,)")
        def solve(P: np.ndarray, q: np.ndarray) -> np.ndarray:
            return q

        np.testing.assert_array_equal(solve(np.eye(4), np.ones(4)), np.ones(4))

    def test_mismatch_names_argument_and_shapes(self, enabled: None) -> None:
        @check_shapes("P:(n,n)", "q:(n,)")
        def solve(P: np.ndarray, q: np.ndarray) -> np.ndarray:
            return q

        with pytest.raises(ShapeContractError) as excinfo:
            solve(np.eye(4), np.ones(5))
        message = str(excinfo.value)
        assert "argument 'q'" in message
        assert "n=4" in message  # bound by P
        assert "(5,)" in message

    def test_rank_mismatch(self, enabled: None) -> None:
        @check_shapes("D:(V,T)")
        def forecast(D: np.ndarray) -> np.ndarray:
            return D

        with pytest.raises(ShapeContractError, match="expected 2-d"):
            forecast(np.zeros(3))

    def test_integer_dimensions(self, enabled: None) -> None:
        @check_shapes("x:(3,)")
        def f(x: np.ndarray) -> np.ndarray:
            return x

        f(np.zeros(3))
        with pytest.raises(ShapeContractError, match="axis 0 expected 3"):
            f(np.zeros(4))

    def test_return_value_checked_against_bindings(self, enabled: None) -> None:
        @check_shapes("x:(n,)", ret="(n,)")
        def bad(x: np.ndarray) -> np.ndarray:
            return np.concatenate([x, x])

        with pytest.raises(ShapeContractError, match="return value"):
            bad(np.zeros(2))

    def test_none_arguments_skipped(self, enabled: None) -> None:
        @check_shapes("w:(n,)")
        def f(x: int, w: np.ndarray | None = None) -> int:
            return x

        assert f(1) == 1
        assert f(1, None) == 1

    def test_dtype_kind_checked(self, enabled: None) -> None:
        @check_shapes("x:(n,):float")
        def f(x: np.ndarray) -> np.ndarray:
            return x

        f(np.zeros(2))
        with pytest.raises(ShapeContractError, match="dtype kind 'float'"):
            f(np.array([1, 2]))

    def test_non_array_argument_rejected(self, enabled: None) -> None:
        @check_shapes("x:(n,)")
        def f(x: np.ndarray) -> np.ndarray:
            return x

        with pytest.raises(ShapeContractError, match="not array-like"):
            f(object())

    def test_sparse_matrices_supported(self, enabled: None) -> None:
        sp = pytest.importorskip("scipy.sparse")

        @check_shapes("P:(n,n)", "q:(n,)")
        def f(P: object, q: np.ndarray) -> np.ndarray:
            return q

        f(sp.identity(3, format="csc"), np.zeros(3))
        with pytest.raises(ShapeContractError):
            f(sp.identity(3, format="csc"), np.zeros(2))

    def test_error_is_a_value_error(self, enabled: None) -> None:
        assert issubclass(ShapeContractError, ValueError)


class TestLibraryBoundaries:
    """The decorators applied in the library guard real entry points.

    Decoration happens at import time, so these run the calls in a child
    interpreter with ``REPRO_CONTRACTS=1``.
    """

    @staticmethod
    def run_snippet(code: str) -> subprocess.CompletedProcess[str]:
        env = dict(os.environ, REPRO_CONTRACTS="1")
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )

    def test_solve_qp_contract_fires(self) -> None:
        result = self.run_snippet(
            "import numpy as np\n"
            "from repro.solvers.qp import solve_qp\n"
            "from repro.contracts import ShapeContractError\n"
            "try:\n"
            "    solve_qp(np.eye(3), np.ones(4), np.eye(3), np.zeros(3), np.ones(3))\n"
            "except ShapeContractError as e:\n"
            "    assert \"argument 'q'\" in str(e), str(e)\n"
            "    assert '(4,)' in str(e), str(e)\n"
            "    print('CONTRACT OK')\n"
        )
        assert result.returncode == 0, result.stderr
        assert "CONTRACT OK" in result.stdout

    def test_solve_qp_still_solves_with_contracts_on(self) -> None:
        result = self.run_snippet(
            "import numpy as np\n"
            "from repro.solvers.qp import solve_qp\n"
            "sol = solve_qp(np.eye(2), np.array([-1.0, 0.0]), np.eye(2),\n"
            "               np.zeros(2), np.ones(2))\n"
            "assert sol.is_optimal\n"
            "print('SOLVE OK')\n"
        )
        assert result.returncode == 0, result.stderr
        assert "SOLVE OK" in result.stdout
