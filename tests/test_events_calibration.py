"""Calibration collector, report, and the ``events`` CLI.

The collector is checked against the theory it implements: on a
controlled single-queue replay the measured mean sojourn and violation
rate must match the load-matched M/M/1 predictions within the sampling
error of the run.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main
from repro.events.calibration import (
    CalibrationCell,
    CalibrationCollector,
    CalibrationReport,
)
from repro.events.engine import EventEngine, ReplayConfig
from repro.simulation.scenario import build_small_scenario


def _calibrated_run(rate=10.0, period_duration=400.0, seed=5):
    scenario = build_small_scenario(
        num_periods=3, num_datacenters=1, num_locations=1, seed=0
    )
    scenario = dataclasses.replace(scenario, demand=np.full((1, 3), rate))
    states = np.full((2, 1, 1), 0.95)  # one server, capacity above rate
    collector = CalibrationCollector()
    engine = EventEngine(
        scenario,
        states,
        config=ReplayConfig(seed=seed, period_duration=period_duration),
        collectors=(collector,),
    )
    engine.run(jobs=1)
    return scenario, collector


class TestCalibrationCollector:
    def test_cells_match_mm1_theory_at_measured_load(self):
        scenario, collector = _calibrated_run()
        cells = collector.cells
        assert len(cells) == 2  # one (l, v) pair per replayed period
        mu = scenario.sla.service_rate
        for cell in cells:
            assert cell.servers == 1
            assert cell.measured > 2000
            # prediction is load-matched: recompute it from the cell
            slack = mu - cell.arrival_rate
            assert cell.predicted_sojourn == pytest.approx(1.0 / slack)
            budget = scenario.sla.max_latency - cell.network_latency
            assert cell.predicted_violation_rate == pytest.approx(
                np.exp(-slack * budget)
            )
            # measured vs predicted: within a few standard errors at
            # n_eff = n (1 - rho)^2 effective samples.
            assert cell.mean_sojourn == pytest.approx(cell.predicted_sojourn, rel=0.1)
            assert cell.violation_rate == pytest.approx(
                cell.predicted_violation_rate, abs=0.05
            )
            assert cell.utilization == pytest.approx(cell.arrival_rate / mu)

    def test_report_aggregates_and_serializes(self):
        _, collector = _calibrated_run()
        report = collector.report()
        rows = report.location_rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["measured"] > 0
        assert row["mean_latency"] == pytest.approx(row["predicted_latency"], rel=0.1)
        assert 0.0 <= row["violation_rate"] <= 1.0

        table = report.format_table()
        assert "v0" in table
        assert "viol meas" in table

        payload = json.loads(report.to_json())
        assert payload["locations"] == ["v0"]
        assert len(payload["cells"]) == 2
        assert payload["per_location"][0]["violation_rate"] == pytest.approx(
            row["violation_rate"]
        )

    def test_requires_start(self):
        collector = CalibrationCollector()
        with pytest.raises(RuntimeError, match="never started"):
            collector.report()

    def test_non_finite_statistics_serialize_as_null(self):
        overloaded = CalibrationCell(
            period=1,
            datacenter=0,
            location=0,
            servers=1,
            routed=10,
            measured=0,
            arrival_rate=30.0,
            utilization=1.2,
            mean_sojourn=float("nan"),
            predicted_sojourn=float("inf"),
            violations=0,
            violation_rate=float("nan"),
            predicted_violation_rate=1.0,
            network_latency=0.02,
        )
        report = CalibrationReport(
            cells=(overloaded,),
            locations=("v0",),
            datacenters=("dc0",),
            location_arrivals=np.array([10]),
            location_drops=np.array([0]),
            max_latency=0.15,
        )
        payload = json.loads(report.to_json())  # must be strict JSON
        cell = payload["cells"][0]
        assert cell["mean_sojourn"] is None
        assert cell["predicted_sojourn"] is None
        assert cell["predicted_violation_rate"] == 1.0
        # an overload-only location aggregates to empty (null) rows
        assert payload["per_location"][0]["mean_latency"] is None


class TestEventsCLI:
    def _run(self, argv, capsys):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_diurnal_small_scale(self, capsys, tmp_path):
        out_path = tmp_path / "calibration.json"
        code, out = self._run(
            [
                "events",
                "--scenario",
                "diurnal",
                "--scale",
                "small",
                "--periods",
                "4",
                "--requests",
                "2000",
                "--seed",
                "1",
                "--out",
                str(out_path),
            ],
            capsys,
        )
        assert code == 0
        assert "requests=" in out
        assert "viol pred" in out
        payload = json.loads(out_path.read_text())
        assert payload["per_location"]

    def test_outage_small_scale(self, capsys):
        code, out = self._run(
            [
                "events",
                "--scenario",
                "outage",
                "--scale",
                "small",
                "--periods",
                "6",
                "--requests",
                "2000",
            ],
            capsys,
        )
        assert code == 0
        assert "stranded=" in out

    def test_trace_replay(self, capsys, tmp_path):
        rng = np.random.default_rng(0)
        trace_path = tmp_path / "trace.npz"
        np.savez(
            trace_path,
            times=np.sort(rng.uniform(0.0, 30.0, size=1500)),
            locations=rng.integers(0, 4, size=1500),
        )
        code, out = self._run(
            [
                "events",
                "--scenario",
                "trace",
                "--scale",
                "small",
                "--periods",
                "4",
                "--trace",
                str(trace_path),
            ],
            capsys,
        )
        assert code == 0
        assert "requests=1500" in out

    def test_trace_requires_path(self):
        with pytest.raises(SystemExit, match="requires --trace"):
            main(["events", "--scenario", "trace", "--scale", "small"])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["events", "--scenario", "nonsense"])


def test_event_checks_registered_with_capped_tiers():
    from repro.verify.runner import CHECKS

    for name in ("fluid_matches_events", "events_deterministic_replay"):
        assert name in CHECKS
        assert CHECKS[name].tiers == ("tiny", "small")
