"""Tests for the prediction package."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prediction.ar import ARPredictor
from repro.prediction.base import Predictor
from repro.prediction.evaluation import backtest
from repro.prediction.naive import LastValuePredictor, SeasonalNaivePredictor
from repro.prediction.oracle import OraclePredictor


class TestBaseProtocol:
    def test_observe_validates_length(self):
        predictor = LastValuePredictor(2)
        with pytest.raises(ValueError, match="expected 2"):
            predictor.observe(np.array([1.0]))

    def test_observe_rejects_negative(self):
        predictor = LastValuePredictor(1)
        with pytest.raises(ValueError, match="nonnegative"):
            predictor.observe(np.array([-1.0]))

    def test_history_accumulates(self):
        predictor = LastValuePredictor(2)
        predictor.observe([1.0, 2.0])
        predictor.observe([3.0, 4.0])
        assert predictor.history == pytest.approx(np.array([[1.0, 3.0], [2.0, 4.0]]))

    def test_observe_history_bulk(self):
        predictor = LastValuePredictor(2)
        predictor.observe_history(np.arange(6, dtype=float).reshape(2, 3))
        assert predictor.num_observations == 3

    def test_reset_clears(self):
        predictor = LastValuePredictor(1)
        predictor.observe([1.0])
        predictor.reset()
        assert predictor.num_observations == 0
        with pytest.raises(ValueError, match="no observed history"):
            predictor.predict(1)

    def test_invalid_num_series(self):
        with pytest.raises(ValueError):
            LastValuePredictor(0)


class TestLastValue:
    def test_flat_forecast(self):
        predictor = LastValuePredictor(2)
        predictor.observe([1.0, 5.0])
        predictor.observe([2.0, 6.0])
        forecast = predictor.predict(3)
        assert forecast == pytest.approx(np.array([[2.0] * 3, [6.0] * 3]))

    def test_invalid_horizon(self):
        predictor = LastValuePredictor(1)
        predictor.observe([1.0])
        with pytest.raises(ValueError):
            predictor.predict(0)


class TestSeasonalNaive:
    def test_degrades_to_last_value_without_a_season(self):
        predictor = SeasonalNaivePredictor(1, season_length=24)
        predictor.observe([5.0])
        assert predictor.predict(2) == pytest.approx(np.array([[5.0, 5.0]]))

    def test_repeats_last_season(self):
        predictor = SeasonalNaivePredictor(1, season_length=4, memory_seasons=1)
        season = [1.0, 2.0, 3.0, 4.0]
        for value in season + season:
            predictor.observe([value])
        forecast = predictor.predict(4)
        assert forecast[0] == pytest.approx(season)

    def test_averages_memory_seasons(self):
        predictor = SeasonalNaivePredictor(1, season_length=2, memory_seasons=2)
        for value in [1.0, 10.0, 3.0, 20.0]:
            predictor.observe([value])
        forecast = predictor.predict(2)
        assert forecast[0, 0] == pytest.approx(2.0)  # mean(1, 3)
        assert forecast[0, 1] == pytest.approx(15.0)  # mean(10, 20)

    def test_forecast_beyond_one_season(self):
        predictor = SeasonalNaivePredictor(1, season_length=3, memory_seasons=1)
        for value in [1.0, 2.0, 3.0]:
            predictor.observe([value])
        forecast = predictor.predict(6)
        assert forecast[0] == pytest.approx([1.0, 2.0, 3.0, 1.0, 2.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(1, season_length=0)
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(1, season_length=5, memory_seasons=0)


class TestAR:
    def test_recovers_ar1_process(self, rng):
        # x_t = 0.7 x_{t-1} + 3 + noise; forecast should approach the
        # stationary mean 10.
        predictor = ARPredictor(1, order=1, clip_factor=None)
        x = 10.0
        for _ in range(400):
            x = 0.7 * x + 3.0 + rng.normal(scale=0.05)
            predictor.observe([max(x, 0.0)])
        forecast = predictor.predict(50)
        assert forecast[0, -1] == pytest.approx(10.0, rel=0.05)

    def test_fits_deterministic_linear_trend(self):
        # x_t = t is an exact AR(2) process: x_t = 2x_{t-1} - x_{t-2}.
        predictor = ARPredictor(1, order=2, ridge=1e-10, clip_factor=None)
        for t in range(1, 30):
            predictor.observe([float(t)])
        forecast = predictor.predict(3)
        assert forecast[0] == pytest.approx([30.0, 31.0, 32.0], rel=1e-3)

    def test_falls_back_to_persistence_on_short_history(self):
        predictor = ARPredictor(1, order=5)
        predictor.observe([7.0])
        assert predictor.predict(2) == pytest.approx(np.array([[7.0, 7.0]]))

    def test_forecasts_are_nonnegative(self, rng):
        predictor = ARPredictor(1, order=2)
        # A crashing series would extrapolate negative without the floor.
        for value in [100.0, 60.0, 30.0, 10.0, 1.0]:
            predictor.observe([value])
        forecast = predictor.predict(10)
        assert np.all(forecast >= 0.0)

    def test_clip_factor_bounds_explosion(self):
        predictor = ARPredictor(1, order=2, clip_factor=2.0)
        # Exponentially growing history makes unclipped AR explode.
        for value in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]:
            predictor.observe([value])
        forecast = predictor.predict(20)
        assert forecast.max() <= 2.0 * 32.0 + 1e-9

    def test_multiseries_fit_independent(self, rng):
        predictor = ARPredictor(2, order=1, clip_factor=None)
        for _ in range(100):
            predictor.observe([5.0 + rng.normal(scale=0.01), 50.0 + rng.normal(scale=0.01)])
        forecast = predictor.predict(2)
        assert forecast[0, 0] == pytest.approx(5.0, rel=0.05)
        assert forecast[1, 0] == pytest.approx(50.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ARPredictor(1, order=0)
        with pytest.raises(ValueError):
            ARPredictor(1, ridge=-1.0)
        with pytest.raises(ValueError):
            ARPredictor(1, clip_factor=0.0)


class TestOracle:
    def test_exact_forecast(self):
        truth = np.arange(10, dtype=float).reshape(1, 10)
        predictor = OraclePredictor(truth)
        predictor.observe(truth[:, 0])
        predictor.observe(truth[:, 1])
        forecast = predictor.predict(3)
        assert forecast[0] == pytest.approx([2.0, 3.0, 4.0])

    def test_holds_last_column_past_the_end(self):
        truth = np.array([[1.0, 2.0]])
        predictor = OraclePredictor(truth)
        predictor.observe([1.0])
        predictor.observe([2.0])
        forecast = predictor.predict(3)
        assert forecast[0] == pytest.approx([2.0, 2.0, 2.0])

    def test_predict_without_observations_starts_at_zero(self):
        truth = np.array([[5.0, 6.0]])
        assert OraclePredictor(truth).predict(1)[0, 0] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OraclePredictor(np.empty((1, 0)))
        with pytest.raises(ValueError):
            OraclePredictor(-np.ones((1, 3)))


class TestBacktest:
    def test_oracle_has_zero_error(self):
        truth = np.abs(np.sin(np.arange(40, dtype=float)))[None, :] + 1.0
        report = backtest(OraclePredictor(truth), truth, horizon=3)
        assert report.overall_rmse == pytest.approx(0.0, abs=1e-12)

    def test_error_grows_with_lead_time_for_persistence(self, rng):
        # Random walk: h-step persistence error grows like sqrt(h).
        steps = rng.normal(size=300)
        trajectory = np.abs(np.cumsum(steps) + 50.0)[None, :]
        report = backtest(LastValuePredictor(1), trajectory, horizon=5)
        assert report.rmse_per_step[-1] > report.rmse_per_step[0]

    def test_counts_forecast_origins(self):
        truth = np.ones((1, 20))
        report = backtest(LastValuePredictor(1), truth, horizon=2, warmup=4)
        assert report.num_forecasts == 20 - 2 - 4 + 1

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            backtest(LastValuePredictor(1), np.ones((1, 5)), horizon=4, warmup=4)

    def test_mape_skips_zero_targets(self):
        truth = np.zeros((1, 20))
        truth[0, ::2] = 2.0
        report = backtest(LastValuePredictor(1), truth, horizon=1)
        assert np.isfinite(report.overall_mape)
