"""Tests for Holt-Winters, ensembles, and spot pricing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prediction.ar import ARPredictor
from repro.prediction.ensemble import BestRecentEnsemble, MeanEnsemble
from repro.prediction.evaluation import backtest
from repro.prediction.holt_winters import HoltWintersPredictor
from repro.prediction.naive import LastValuePredictor, SeasonalNaivePredictor
from repro.pricing.spot import SpotMarketParams, SpotPriceModel, spot_savings_fraction


def _seasonal_series(num_days=8, noise=0.0, rng=None, trend=0.0):
    hours = np.arange(24 * num_days, dtype=float)
    base = 50.0 + 20.0 * np.sin(2 * np.pi * hours / 24.0) + trend * hours
    if rng is not None and noise > 0:
        base = np.maximum(base + rng.normal(scale=noise, size=base.size), 0.0)
    return base[None, :]


class TestHoltWinters:
    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersPredictor(1, season_length=0)
        with pytest.raises(ValueError):
            HoltWintersPredictor(1, alpha=1.0)
        with pytest.raises(ValueError):
            HoltWintersPredictor(1, beta=1.0)
        with pytest.raises(ValueError):
            HoltWintersPredictor(1, gamma=-0.1)

    def test_persistence_before_first_season(self):
        predictor = HoltWintersPredictor(1, season_length=24)
        predictor.observe([42.0])
        assert predictor.predict(3) == pytest.approx(np.full((1, 3), 42.0))

    def test_learns_pure_seasonal_signal(self):
        series = _seasonal_series(num_days=6)
        predictor = HoltWintersPredictor(1, season_length=24)
        predictor.observe_history(series[:, :-24])
        forecast = predictor.predict(24)
        assert forecast[0] == pytest.approx(series[0, -24:], rel=0.05)

    def test_tracks_linear_trend(self):
        series = _seasonal_series(num_days=6, trend=0.5)
        predictor = HoltWintersPredictor(1, season_length=24, beta=0.2)
        predictor.observe_history(series[:, :-12])
        forecast = predictor.predict(12)
        assert forecast[0] == pytest.approx(series[0, -12:], rel=0.1)

    def test_beats_ar_on_onoff_pattern(self, rng):
        # The motivation for having it: hard diurnal steps break AR.
        from repro.workload.diurnal import OnOffEnvelope

        hours = np.arange(24 * 8, dtype=float)
        series = (200.0 * OnOffEnvelope().factor(hours))[None, :]
        series = series + rng.normal(scale=3.0, size=series.shape)
        series = np.maximum(series, 0.0)
        hw = backtest(HoltWintersPredictor(1, season_length=24), series, horizon=3, warmup=48)
        ar = backtest(ARPredictor(1, order=3), series, horizon=3, warmup=48)
        assert hw.overall_rmse < ar.overall_rmse

    def test_reset_clears_state(self):
        predictor = HoltWintersPredictor(1, season_length=4)
        predictor.observe_history(np.arange(8, dtype=float)[None, :])
        predictor.reset()
        predictor.observe([5.0])
        assert predictor.predict(1)[0, 0] == pytest.approx(5.0)

    def test_forecasts_nonnegative(self):
        predictor = HoltWintersPredictor(1, season_length=4)
        predictor.observe_history(
            np.array([[10.0, 0.0, 10.0, 0.0, 8.0, 0.0, 8.0, 0.0, 1.0]])
        )
        assert np.all(predictor.predict(8) >= 0.0)


class TestMeanEnsemble:
    def test_average_of_members(self):
        a = LastValuePredictor(1)
        b = LastValuePredictor(1)
        ensemble = MeanEnsemble([a, b])
        ensemble.observe([10.0])
        # Both members saw the same data -> same forecast -> mean equals it.
        assert ensemble.predict(2) == pytest.approx(np.full((1, 2), 10.0))

    def test_weighted(self):
        class Constant(LastValuePredictor):
            def __init__(self, value):
                super().__init__(1)
                self._value = value

            def predict(self, horizon):
                return np.full((1, horizon), self._value)

        ensemble = MeanEnsemble([Constant(0.0), Constant(10.0)], weights=[3.0, 1.0])
        ensemble.observe([1.0])
        assert ensemble.predict(1)[0, 0] == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeanEnsemble([])
        with pytest.raises(ValueError):
            MeanEnsemble([LastValuePredictor(1), LastValuePredictor(2)])
        with pytest.raises(ValueError):
            MeanEnsemble([LastValuePredictor(1)], weights=[0.0])


class TestBestRecentEnsemble:
    def test_selects_the_accurate_member(self):
        series = _seasonal_series(num_days=5)
        good = SeasonalNaivePredictor(1, season_length=24)
        bad = LastValuePredictor(1)
        ensemble = BestRecentEnsemble([bad, good])
        ensemble.observe_history(series[:, :96])
        # On a strongly seasonal series the seasonal member must win.
        assert ensemble.best_member_index == 1
        forecast = ensemble.predict(24)
        reference = good.predict(24)
        assert forecast == pytest.approx(reference)

    def test_validation(self):
        with pytest.raises(ValueError):
            BestRecentEnsemble([LastValuePredictor(1)], discount=0.0)

    def test_reset(self):
        ensemble = BestRecentEnsemble([LastValuePredictor(1), LastValuePredictor(1)])
        ensemble.observe([1.0])
        ensemble.reset()
        assert ensemble.num_observations == 0
        assert ensemble.best_member_index == 0


class TestSpotPricing:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpotMarketParams(on_demand_price=0.0)
        with pytest.raises(ValueError):
            SpotMarketParams(floor_fraction=1.5)
        with pytest.raises(ValueError):
            SpotMarketParams(spike_multiplier=1.0)

    def test_floor_respected(self, rng):
        model = SpotPriceModel()
        trace = model.generate(2000, rng)
        assert trace.prices.min() >= model.expected_calm_price() - 1e-12

    def test_calm_market_sits_at_floor(self, rng):
        model = SpotPriceModel(SpotMarketParams(spike_probability=0.0))
        trace = model.generate(500, rng)
        assert trace.prices.mean() == pytest.approx(
            model.expected_calm_price(), rel=0.05
        )

    def test_spikes_raise_the_mean(self, rng):
        calm = SpotPriceModel(SpotMarketParams(spike_probability=0.0))
        spiky = SpotPriceModel(SpotMarketParams(spike_probability=0.15))
        calm_trace = calm.generate(3000, np.random.default_rng(1))
        spiky_trace = spiky.generate(3000, np.random.default_rng(1))
        assert spiky_trace.prices.mean() > calm_trace.prices.mean()

    def test_savings_fraction(self, rng):
        model = SpotPriceModel(SpotMarketParams(spike_probability=0.0))
        trace = model.generate(1000, rng)
        savings = spot_savings_fraction(trace, on_demand_price=1.0)
        assert savings == pytest.approx(0.7, abs=0.05)
        with pytest.raises(ValueError):
            spot_savings_fraction(trace, 0.0)

    def test_deterministic_given_rng(self):
        model = SpotPriceModel()
        a = model.generate(200, np.random.default_rng(9))
        b = model.generate(200, np.random.default_rng(9))
        assert a.prices == pytest.approx(b.prices)
