"""Tests for the game extensions: the closed-loop W-MPC game and the
price-of-anarchy exploration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.game.anarchy import explore_equilibria
from repro.game.best_response import BestResponseConfig, compute_equilibrium
from repro.game.mpc_game import MPCGameConfig, run_mpc_game
from repro.game.players import random_providers
from repro.game.swp import solve_swp
from repro.solvers.dual import QuotaCoordinator


def _population(n=3, horizon=8, seed=0, demand_scale=60.0):
    rng = np.random.default_rng(seed)
    latency = rng.uniform(10.0, 60.0, size=(3, 4))
    return random_providers(
        n,
        ("dc0", "dc1", "dc2"),
        ("v0", "v1", "v2", "v3"),
        latency,
        horizon,
        rng,
        demand_scale=demand_scale,
    )


class TestMPCGameConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MPCGameConfig(window=0)
        with pytest.raises(ValueError):
            MPCGameConfig(coordination_rounds=0)
        with pytest.raises(ValueError):
            MPCGameConfig(slack_penalty=0.0)


class TestMPCGame:
    def test_runs_and_respects_capacity(self):
        providers = _population(3, demand_scale=80.0, seed=1)
        capacity = np.array([60.0, 800.0, 800.0])
        result = run_mpc_game(providers, capacity, MPCGameConfig(window=3))
        assert result.capacity_violation <= 1e-6
        assert result.total_cost > 0
        assert len(result.periods) == providers[0].horizon - 1
        assert result.provider_costs.shape == (3,)

    def test_quotas_always_sum_to_capacity(self):
        providers = _population(2, demand_scale=80.0, seed=2)
        capacity = np.array([50.0, 500.0, 500.0])
        result = run_mpc_game(providers, capacity, MPCGameConfig(window=2))
        for record in result.periods:
            assert record.quotas.sum(axis=0) == pytest.approx(capacity)

    def test_loose_capacity_serves_everything(self):
        providers = _population(2, demand_scale=40.0, seed=3)
        result = run_mpc_game(
            providers, np.full(3, 1e5), MPCGameConfig(window=3)
        )
        assert result.total_shortfall == pytest.approx(0.0, abs=1e-4)

    def test_more_coordination_rounds_do_not_hurt(self):
        providers = _population(3, demand_scale=90.0, seed=4)
        capacity = np.array([50.0, 700.0, 700.0])
        quick = run_mpc_game(
            providers, capacity, MPCGameConfig(window=3, coordination_rounds=1)
        )
        careful = run_mpc_game(
            providers, capacity, MPCGameConfig(window=3, coordination_rounds=6)
        )
        quick_total = quick.total_cost + 1e3 * quick.total_shortfall
        careful_total = careful.total_cost + 1e3 * careful.total_shortfall
        assert careful_total <= quick_total * 1.05

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            run_mpc_game([], np.ones(3))
        short = _population(1, horizon=1)
        with pytest.raises(ValueError, match="at least 2"):
            run_mpc_game(short, np.ones(3))


class TestSetQuotas:
    def test_set_and_read_back(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2)
        coordinator.set_quotas(np.array([[70.0], [30.0]]))
        assert coordinator.quotas == pytest.approx(np.array([[70.0], [30.0]]))

    def test_rejects_bad_sum(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2)
        with pytest.raises(ValueError, match="sum"):
            coordinator.set_quotas(np.array([[70.0], [40.0]]))

    def test_rejects_negative(self):
        coordinator = QuotaCoordinator(np.array([100.0]), 2)
        with pytest.raises(ValueError, match="nonnegative"):
            coordinator.set_quotas(np.array([[110.0], [-10.0]]))


class TestBiasedStartEquilibrium:
    def test_initial_quotas_honoured(self):
        providers = _population(2, horizon=4, demand_scale=80.0, seed=5)
        capacity = np.array([40.0, 400.0, 400.0])
        biased = np.array(
            [[36.0, 360.0, 360.0], [4.0, 40.0, 40.0]]
        )
        result = compute_equilibrium(
            providers,
            capacity,
            BestResponseConfig(epsilon=1e-4, max_iterations=1),
            initial_quotas=biased,
        )
        # One iteration from the biased start: quota row sums unchanged.
        assert result.quotas.sum(axis=0) == pytest.approx(capacity)


class TestAnarchyExploration:
    def test_report_brackets_efficiency(self):
        providers = _population(3, horizon=4, demand_scale=70.0, seed=6)
        capacity = np.array([60.0, 600.0, 600.0])
        report = explore_equilibria(
            providers,
            capacity,
            num_starts=3,
            rng=np.random.default_rng(1),
            config=BestResponseConfig(epsilon=1e-4),
        )
        assert report.num_verified >= 1
        assert report.price_of_stability_estimate <= report.price_of_anarchy_estimate
        # Theorem 1: the best equilibrium found should be ~socially optimal.
        assert report.price_of_stability_estimate == pytest.approx(1.0, abs=0.1)

    def test_social_cost_matches_swp(self):
        providers = _population(2, horizon=3, demand_scale=50.0, seed=7)
        capacity = np.array([500.0, 500.0, 500.0])
        config = BestResponseConfig(epsilon=1e-4)
        report = explore_equilibria(
            providers, capacity, num_starts=1, config=config,
            rng=np.random.default_rng(2),
        )
        swp = solve_swp(providers, capacity, slack_penalty=config.slack_penalty)
        assert report.social_cost == pytest.approx(swp.total_cost, rel=1e-6)


class TestHeterogeneousWindows:
    """Definition 2 allows per-SP windows; Theorem 1's optimality needs a
    common one.  The loop supports both."""

    def test_per_provider_windows_run(self):
        providers = _population(3, demand_scale=70.0, seed=9)
        capacity = np.array([60.0, 700.0, 700.0])
        result = run_mpc_game(
            providers, capacity, MPCGameConfig(window=(1, 3, 5))
        )
        assert result.capacity_violation <= 1e-6
        assert result.total_cost > 0

    def test_window_count_mismatch_rejected(self):
        providers = _population(3, seed=9)
        with pytest.raises(ValueError, match="windows configured"):
            run_mpc_game(
                providers, np.full(3, 1e4), MPCGameConfig(window=(1, 2))
            )

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            MPCGameConfig(window=(1, 0, 2))

    def test_myopic_member_pays_for_short_sightedness(self):
        # Everyone at W=4 vs provider 0 dropped to W=1, on demand with a
        # predictable ramp it must pre-provision for.
        rng = np.random.default_rng(10)
        latency = rng.uniform(10.0, 60.0, size=(3, 4))
        providers = random_providers(
            3, ("dc0", "dc1", "dc2"), ("v0", "v1", "v2", "v3"),
            latency, 10, np.random.default_rng(11), demand_scale=60.0,
        )
        # Inject a strong ramp into provider 0's demand.
        ramped = []
        for index, p in enumerate(providers):
            demand = p.demand.copy()
            if index == 0:
                demand *= np.linspace(0.4, 2.5, p.horizon)[None, :]
            import dataclasses
            inst = dataclasses.replace(
                p.instance,
                reconfiguration_weights=np.full(3, 20.0),
            )
            ramped.append(type(p)(p.name, inst, demand, p.prices))
        capacity = np.full(3, 1e5)

        uniform = run_mpc_game(
            ramped, capacity, MPCGameConfig(window=4, slack_penalty=200.0)
        )
        myopic = run_mpc_game(
            ramped, capacity, MPCGameConfig(window=(1, 4, 4), slack_penalty=200.0)
        )
        uniform_cost = uniform.provider_costs[0] + 200.0 * uniform.total_shortfall
        myopic_cost = myopic.provider_costs[0] + 200.0 * myopic.total_shortfall
        assert myopic_cost > uniform_cost
