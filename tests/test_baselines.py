"""Tests for the placement baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import greedy_assignment_states, score_states
from repro.baselines.cost_greedy import run_cost_greedy
from repro.baselines.nearest import run_nearest_datacenter
from repro.baselines.reactive import run_reactive
from repro.baselines.static_opt import run_static_optimal
from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.core.instance import DSPPInstance
from repro.prediction.oracle import OraclePredictor
from repro.simulation.scenario import build_small_scenario


@pytest.fixture
def scenario():
    return build_small_scenario(num_periods=10, seed=7)


class TestScoreStates:
    def test_unmet_demand_detection(self):
        instance = DSPPInstance(
            datacenters=("dc",),
            locations=("v",),
            sla_coefficients=np.array([[0.1]]),
            reconfiguration_weights=np.array([1.0]),
            capacities=np.array([np.inf]),
            initial_state=np.zeros((1, 1)),
        )
        states = np.full((2, 1, 1), 5.0)  # serves 50 req
        demand = np.array([[40.0, 80.0]])
        prices = np.ones((1, 2))
        result = score_states("test", instance, states, demand, prices)
        assert result.unmet_demand[0, 0] == pytest.approx(0.0)
        assert result.unmet_demand[1, 0] == pytest.approx(30.0)


class TestGreedyAssignment:
    def test_prefers_lowest_score(self):
        instance = DSPPInstance(
            datacenters=("near", "far"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.2]]),
            reconfiguration_weights=np.ones(2),
            capacities=np.full(2, np.inf),
            initial_state=np.zeros((2, 1)),
        )
        preference = np.array([[1.0], [2.0]])
        allocation = greedy_assignment_states(instance, np.array([50.0]), preference)
        assert allocation[0, 0] == pytest.approx(5.0)  # a * D
        assert allocation[1, 0] == 0.0

    def test_spills_on_capacity(self):
        instance = DSPPInstance(
            datacenters=("near", "far"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.2]]),
            reconfiguration_weights=np.ones(2),
            capacities=np.array([2.0, np.inf]),
            initial_state=np.zeros((2, 1)),
        )
        preference = np.array([[1.0], [2.0]])
        allocation = greedy_assignment_states(instance, np.array([50.0]), preference)
        assert allocation[0, 0] == pytest.approx(2.0)
        # 20 requests at near, remaining 30 need 0.2 * 30 = 6 at far.
        assert allocation[1, 0] == pytest.approx(6.0)

    def test_infeasible_raises(self):
        instance = DSPPInstance(
            datacenters=("only",),
            locations=("v",),
            sla_coefficients=np.array([[0.1]]),
            reconfiguration_weights=np.ones(1),
            capacities=np.array([1.0]),
            initial_state=np.zeros((1, 1)),
        )
        with pytest.raises(ValueError, match="cannot serve"):
            greedy_assignment_states(instance, np.array([500.0]), np.array([[1.0]]))


class TestBaselineRuns:
    def test_static_peak_never_violates(self, scenario):
        result = run_static_optimal(scenario.instance, scenario.demand, scenario.prices)
        assert result.total_unmet_demand == pytest.approx(0.0, abs=1e-5)
        # After the initial ramp there is no reconfiguration at all.
        assert np.abs(result.trajectory.controls[1:]).sum() == pytest.approx(0.0, abs=1e-6)

    def test_static_mean_cheaper_but_riskier(self, scenario):
        peak = run_static_optimal(scenario.instance, scenario.demand, scenario.prices, sizing="peak")
        mean = run_static_optimal(scenario.instance, scenario.demand, scenario.prices, sizing="mean")
        assert mean.costs.allocation_total <= peak.costs.allocation_total + 1e-6
        assert mean.total_unmet_demand >= peak.total_unmet_demand

    def test_static_rejects_unknown_sizing(self, scenario):
        with pytest.raises(ValueError):
            run_static_optimal(scenario.instance, scenario.demand, scenario.prices, sizing="p99")

    def test_reactive_tracks_observations(self, scenario):
        result = run_reactive(scenario.instance, scenario.demand, scenario.prices)
        # Each state serves at least the previous period's demand.
        coeff = scenario.instance.demand_coefficients
        for t in range(result.trajectory.num_steps):
            served = (coeff * result.trajectory.states[t]).sum(axis=0)
            assert np.all(served >= scenario.demand[:, t] - 1e-4)

    def test_nearest_uses_closest_feasible_site(self, scenario):
        result = run_nearest_datacenter(
            scenario.instance, scenario.demand, scenario.prices,
            scenario.latency.latency_ms,
        )
        nearest = np.argmin(scenario.latency.latency_ms, axis=0)
        state = result.trajectory.states[0]
        for v, dc in enumerate(nearest):
            assert state[dc, v] > 0

    def test_cost_greedy_prefers_cheap_effective_price(self, scenario):
        result = run_cost_greedy(scenario.instance, scenario.demand, scenario.prices)
        a = scenario.instance.sla_coefficients
        effective = a * scenario.prices[:, 0][:, None]
        cheapest = np.argmin(effective, axis=0)
        state = result.trajectory.states[0]
        for v, dc in enumerate(cheapest):
            assert state[dc, v] > 0

    def test_mpc_beats_reactive_on_total_cost(self, scenario):
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=4),
        )
        mpc = run_closed_loop(controller, scenario.demand, scenario.prices)
        reactive = run_reactive(scenario.instance, scenario.demand, scenario.prices)
        assert mpc.total_cost < reactive.total_cost

    def test_mpc_beats_nearest_on_total_cost(self, scenario):
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=4),
        )
        mpc = run_closed_loop(controller, scenario.demand, scenario.prices)
        nearest = run_nearest_datacenter(
            scenario.instance, scenario.demand, scenario.prices,
            scenario.latency.latency_ms,
        )
        assert mpc.total_cost < nearest.total_cost
