"""Property checks (repro.verify.properties) driven through hypothesis.

Each registered check is itself a property ``(rng, tier) -> findings``;
here hypothesis draws the seed material, so the same differential and
metamorphic oracles that the fuzz CLI runs in campaigns also gate every
test run — at the smallest tier each check supports, to keep the suite
fast.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.runner import CHECKS, run_trial

_FAST_CHECKS = sorted(name for name in CHECKS if name not in ("mm1_sim", "dspp_reference"))


@pytest.mark.parametrize("check", _FAST_CHECKS)
@given(seed=st.integers(0, 10**6))
@settings(max_examples=5)
def test_check_finds_nothing_on_healthy_code(check, seed):
    tier = CHECKS[check].tiers[0]
    result = run_trial(check, tier, [seed])
    assert result.error is None, result.describe()
    assert result.discrepancies == (), result.describe()


@pytest.mark.parametrize("check", ["mm1_sim", "dspp_reference"])
@given(seed=st.integers(0, 10**6))
@settings(max_examples=2)
def test_slow_checks_find_nothing_on_healthy_code(check, seed):
    tier = CHECKS[check].tiers[0]
    result = run_trial(check, tier, [seed])
    assert result.error is None, result.describe()
    assert result.discrepancies == (), result.describe()


def test_trials_are_deterministic():
    a = run_trial("qp_reference", "tiny", [42, 7])
    b = run_trial("qp_reference", "tiny", [42, 7])
    assert a == b


def test_every_check_runs_on_its_smallest_tier():
    # Smoke: the full registry is executable end to end at one fixed seed.
    for name, spec in CHECKS.items():
        result = run_trial(name, spec.tiers[0], [0])
        assert not result.failed, result.describe()


def test_checks_use_only_registered_tiers():
    from repro.verify.generators import TIERS

    for spec in CHECKS.values():
        assert spec.tiers, spec.name
        assert set(spec.tiers) <= set(TIERS), spec.name
