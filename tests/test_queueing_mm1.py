"""Tests for the M/M/1 model (repro.queueing.mm1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.mm1 import (
    MM1Queue,
    max_stable_arrival_rate,
    queueing_delay,
    required_servers,
)


class TestQueueingDelay:
    def test_empty_server_delay_is_service_time(self):
        assert queueing_delay(1.0, 0.0, 4.0) == pytest.approx(0.25)

    def test_matches_eq7(self):
        # q = 1 / (mu - sigma/x)
        assert queueing_delay(2.0, 6.0, 5.0) == pytest.approx(1.0 / (5.0 - 3.0))

    def test_unstable_returns_inf(self):
        assert queueing_delay(1.0, 5.0, 5.0) == math.inf
        assert queueing_delay(1.0, 6.0, 5.0) == math.inf

    def test_more_servers_less_delay(self):
        d1 = queueing_delay(2.0, 8.0, 5.0)
        d2 = queueing_delay(4.0, 8.0, 5.0)
        assert d2 < d1

    @pytest.mark.parametrize(
        "servers,rate,mu", [(0.0, 1.0, 1.0), (1.0, -1.0, 1.0), (1.0, 1.0, 0.0)]
    )
    def test_invalid_arguments(self, servers, rate, mu):
        with pytest.raises(ValueError):
            queueing_delay(servers, rate, mu)


class TestRequiredServers:
    def test_inverts_delay_exactly(self):
        x = required_servers(arrival_rate=30.0, service_rate=5.0, max_delay=0.5)
        assert queueing_delay(x, 30.0, 5.0) == pytest.approx(0.5)

    def test_zero_demand_zero_servers(self):
        assert required_servers(0.0, 5.0, 1.0) == 0.0

    def test_unachievable_bound_raises(self):
        with pytest.raises(ValueError, match="unachievable"):
            required_servers(1.0, 5.0, 0.2)  # 1/mu = 0.2 exactly

    def test_scales_linearly_in_demand(self):
        x1 = required_servers(10.0, 5.0, 1.0)
        x2 = required_servers(20.0, 5.0, 1.0)
        assert x2 == pytest.approx(2.0 * x1)


class TestMaxStableArrivalRate:
    def test_value(self):
        assert max_stable_arrival_rate(3.0, 4.0) == pytest.approx(12.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            max_stable_arrival_rate(0.0, 4.0)


class TestMM1Queue:
    def test_stability_flag(self):
        assert MM1Queue(lam=3.0, mu=4.0).is_stable
        assert not MM1Queue(lam=4.0, mu=4.0).is_stable

    def test_littles_law(self):
        queue = MM1Queue(lam=3.0, mu=4.0)
        assert queue.mean_queue_length == pytest.approx(
            queue.lam * queue.mean_sojourn_time
        )

    def test_unstable_measures_are_inf(self):
        queue = MM1Queue(lam=5.0, mu=4.0)
        assert queue.mean_sojourn_time == math.inf
        assert queue.mean_queue_length == math.inf
        assert queue.sojourn_time_percentile(0.95) == math.inf

    def test_percentile_formula(self):
        queue = MM1Queue(lam=2.0, mu=4.0)
        # Exp(2): 95th percentile = ln(20)/2.
        assert queue.sojourn_time_percentile(0.95) == pytest.approx(
            math.log(20.0) / 2.0
        )

    def test_percentile_bounds(self):
        queue = MM1Queue(lam=1.0, mu=2.0)
        with pytest.raises(ValueError):
            queue.sojourn_time_percentile(1.0)
        with pytest.raises(ValueError):
            queue.sojourn_time_percentile(0.0)

    def test_cdf_at_percentile(self):
        queue = MM1Queue(lam=2.0, mu=4.0)
        t95 = queue.sojourn_time_percentile(0.95)
        assert queue.sojourn_time_cdf(t95) == pytest.approx(0.95)

    def test_cdf_edges(self):
        queue = MM1Queue(lam=2.0, mu=4.0)
        assert queue.sojourn_time_cdf(-1.0) == 0.0
        assert queue.sojourn_time_cdf(0.0) == pytest.approx(0.0)

    def test_sampling_matches_mean(self, rng):
        queue = MM1Queue(lam=3.0, mu=4.0)
        samples = queue.sample_sojourn_times(200_000, rng)
        assert samples.mean() == pytest.approx(queue.mean_sojourn_time, rel=0.02)

    def test_sampling_unstable_raises(self, rng):
        with pytest.raises(ValueError, match="unstable"):
            MM1Queue(lam=5.0, mu=4.0).sample_sojourn_times(10, rng)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            MM1Queue(lam=-1.0, mu=1.0)
        with pytest.raises(ValueError):
            MM1Queue(lam=1.0, mu=0.0)


@settings(max_examples=60, deadline=None)
@given(
    mu=st.floats(0.5, 50.0),
    utilization=st.floats(0.01, 0.95),
    servers=st.floats(0.5, 100.0),
)
def test_required_servers_roundtrip(mu, utilization, servers):
    """required_servers is the exact inverse of queueing_delay (eq. 7 vs 9)."""
    sigma = utilization * mu * servers
    delay = queueing_delay(servers, sigma, mu)
    recovered = required_servers(sigma, mu, delay)
    assert recovered == pytest.approx(servers, rel=1e-9)
