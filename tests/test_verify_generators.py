"""Tests for the seeded problem generators (repro.verify.generators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.qp import QPStatus, solve_qp
from repro.verify.generators import (
    TIERS,
    ScaleTier,
    random_demand,
    random_instance,
    random_prices,
    random_qp,
    random_routing_problem,
)


class TestTiers:
    def test_registry_names_match(self):
        assert set(TIERS) == {"tiny", "small", "medium"}
        for name, tier in TIERS.items():
            assert tier.name == name

    def test_tiers_are_ordered_by_size(self):
        tiny, small, medium = TIERS["tiny"], TIERS["small"], TIERS["medium"]
        for field in ("max_datacenters", "max_locations", "max_horizon", "max_qp_variables"):
            assert getattr(tiny, field) <= getattr(small, field) <= getattr(medium, field)

    def test_string_and_object_tier_agree(self):
        a = random_instance(np.random.default_rng(7), "small")
        b = random_instance(np.random.default_rng(7), TIERS["small"])
        np.testing.assert_array_equal(a.capacities, b.capacities)


class TestRandomInstance:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25)
    def test_valid_and_within_tier_bounds(self, seed):
        rng = np.random.default_rng(seed)
        tier = TIERS["medium"]
        instance = random_instance(rng, tier)
        assert 1 <= instance.num_datacenters <= tier.max_datacenters
        assert 1 <= instance.num_locations <= tier.max_locations
        # Instance validation requires every location servable; re-check
        # the generator's infinite-SLA knockout preserved that.
        assert np.isfinite(instance.sla_coefficients).any(axis=0).all()

    def test_same_seed_same_instance(self):
        a = random_instance(np.random.default_rng([3, 4]), "small")
        b = random_instance(np.random.default_rng([3, 4]), "small")
        np.testing.assert_array_equal(a.sla_coefficients, b.sla_coefficients)
        np.testing.assert_array_equal(a.initial_state, b.initial_state)


class TestRandomDemandPrices:
    @given(seed=st.integers(0, 10**6), load=st.floats(0.1, 0.99))
    @settings(max_examples=25)
    def test_demand_within_provable_bound(self, seed, load):
        rng = np.random.default_rng(seed)
        instance = random_instance(rng, "small")
        demand = random_demand(rng, instance, horizon=3, load=load)
        assert demand.shape == (instance.num_locations, 3)
        assert np.all(demand >= 0)
        safe = instance.max_supportable_demand() / instance.num_locations
        assert np.all(demand <= load * safe[:, None] + 1e-12)

    def test_validation(self):
        rng = np.random.default_rng(0)
        instance = random_instance(rng, "tiny")
        with pytest.raises(ValueError, match="horizon"):
            random_demand(rng, instance, horizon=0)
        with pytest.raises(ValueError, match="load"):
            random_demand(rng, instance, horizon=2, load=0.0)
        with pytest.raises(ValueError, match="horizon"):
            random_prices(rng, instance, horizon=0)

    def test_prices_shape_and_sign(self):
        rng = np.random.default_rng(1)
        instance = random_instance(rng, "small")
        prices = random_prices(rng, instance, horizon=4)
        assert prices.shape == (instance.num_datacenters, 4)
        assert np.all(prices > 0)


class TestRandomQP:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20)
    def test_feasible_by_construction_and_solvable(self, seed):
        rng = np.random.default_rng(seed)
        P, q, A, l, u = random_qp(rng, "tiny")
        assert np.all(l <= u)
        dense_P = P.toarray()
        np.testing.assert_allclose(dense_P, dense_P.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(dense_P) > 0)
        solution = solve_qp(P, q, A, l, u)
        assert solution.status is QPStatus.OPTIMAL

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20)
    def test_equality_rows_capped_below_dimension(self, seed):
        # More equality rows than variables would break the trust-constr
        # reference oracle's null-space factorization.
        rng = np.random.default_rng(seed)
        P, q, A, l, u = random_qp(rng, "tiny", with_equalities=True)
        num_equalities = int(np.sum(l == u))
        assert num_equalities < q.size


class TestRandomRoutingProblem:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20)
    def test_eq12_holds_by_construction(self, seed):
        rng = np.random.default_rng(seed)
        allocation, demand, coeff, latency = random_routing_problem(rng, "small")
        servable = (allocation * coeff).sum(axis=0)
        assert np.all(servable >= demand - 1e-9)
        assert np.all(allocation >= 0) and np.all(demand >= 0)
        assert latency.shape == allocation.shape


def test_scale_tier_is_frozen():
    with pytest.raises(AttributeError):
        TIERS["tiny"].max_horizon = 99  # type: ignore[misc]
    assert isinstance(TIERS["tiny"], ScaleTier)
