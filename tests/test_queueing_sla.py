"""Tests for the SLA linearization (repro.queueing.sla)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.mm1 import queueing_delay
from repro.queueing.sla import (
    SLAPolicy,
    percentile_scale,
    sla_coefficient,
    sla_coefficient_matrix,
)


class TestPercentileScale:
    def test_none_is_identity(self):
        assert percentile_scale(None) == 1.0

    def test_known_value(self):
        assert percentile_scale(0.95) == pytest.approx(math.log(20.0))

    def test_one_minus_inverse_e_is_unity(self):
        assert percentile_scale(1.0 - 1.0 / math.e) == pytest.approx(1.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile_scale(1.0)


class TestSlaCoefficient:
    def test_matches_eq10(self):
        # a = 1 / (mu - 1/(dbar - d))
        a = sla_coefficient(0.02, 0.15, 25.0)
        assert a == pytest.approx(1.0 / (25.0 - 1.0 / 0.13))

    def test_allocation_at_coefficient_meets_sla_exactly(self):
        mu, dbar, d = 25.0, 0.15, 0.02
        a = sla_coefficient(d, dbar, mu)
        sigma = 100.0
        delay = queueing_delay(a * sigma, sigma, mu)
        assert d + delay == pytest.approx(dbar)

    def test_unreachable_pair_is_inf(self):
        assert sla_coefficient(0.2, 0.15, 25.0) == math.inf

    def test_budget_below_service_time_is_inf(self):
        # budget so tight a lone server can't make it: 1/budget > mu
        assert sla_coefficient(0.10, 0.13, 25.0) == math.inf

    def test_farther_needs_more_servers(self):
        near = sla_coefficient(0.01, 0.15, 25.0)
        far = sla_coefficient(0.08, 0.15, 25.0)
        assert far > near

    def test_percentile_tightens(self):
        mean = sla_coefficient(0.02, 0.15, 25.0)
        p95 = sla_coefficient(0.02, 0.15, 25.0, percentile=0.95)
        assert p95 > mean

    def test_reservation_ratio_scales(self):
        base = sla_coefficient(0.02, 0.15, 25.0)
        padded = sla_coefficient(0.02, 0.15, 25.0, reservation_ratio=1.5)
        assert padded == pytest.approx(1.5 * base)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sla_coefficient(-0.1, 0.15, 25.0)
        with pytest.raises(ValueError):
            sla_coefficient(0.1, 0.0, 25.0)
        with pytest.raises(ValueError):
            sla_coefficient(0.1, 0.15, 25.0, reservation_ratio=0.5)


class TestSlaCoefficientMatrix:
    def test_matches_scalar_entries(self):
        latency = np.array([[0.01, 0.05], [0.08, 0.2]])
        matrix = sla_coefficient_matrix(latency, 0.15, 25.0)
        for (l, v), value in np.ndenumerate(latency):
            assert matrix[l, v] == pytest.approx(
                sla_coefficient(value, 0.15, 25.0)
            )

    def test_unreachable_entries_inf(self):
        matrix = sla_coefficient_matrix(np.array([[0.2]]), 0.15, 25.0)
        assert matrix[0, 0] == math.inf

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            sla_coefficient_matrix(np.array([[-1.0]]), 0.15, 25.0)

    def test_percentile_and_reservation_consistent_with_scalar(self):
        latency = np.array([[0.02, 0.04]])
        matrix = sla_coefficient_matrix(
            latency, 0.15, 25.0, percentile=0.9, reservation_ratio=1.2
        )
        for col, value in enumerate(latency[0]):
            assert matrix[0, col] == pytest.approx(
                sla_coefficient(value, 0.15, 25.0, percentile=0.9, reservation_ratio=1.2)
            )


class TestSLAPolicy:
    def test_coefficient_delegates(self):
        policy = SLAPolicy(max_latency=0.15, service_rate=25.0)
        assert policy.coefficient(0.02) == pytest.approx(
            sla_coefficient(0.02, 0.15, 25.0)
        )

    def test_matrix_delegates(self):
        policy = SLAPolicy(max_latency=0.15, service_rate=25.0, percentile=0.95)
        latency = np.array([[0.02], [0.05]])
        assert policy.coefficient_matrix(latency) == pytest.approx(
            sla_coefficient_matrix(latency, 0.15, 25.0, percentile=0.95)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SLAPolicy(max_latency=0.0, service_rate=1.0)
        with pytest.raises(ValueError):
            SLAPolicy(max_latency=1.0, service_rate=1.0, reservation_ratio=0.9)
        with pytest.raises(ValueError):
            SLAPolicy(max_latency=1.0, service_rate=1.0, percentile=1.5)


@settings(max_examples=60, deadline=None)
@given(
    mu=st.floats(1.0, 100.0),
    dbar=st.floats(0.05, 2.0),
    d_frac=st.floats(0.0, 0.95),
    sigma=st.floats(0.1, 1000.0),
)
def test_coefficient_guarantees_sla(mu, dbar, d_frac, sigma):
    """Allocating x = a * sigma always meets the latency bound (eq. 8<->11)."""
    d = d_frac * dbar
    a = sla_coefficient(d, dbar, mu)
    if math.isinf(a):
        return
    delay = queueing_delay(a * sigma, sigma, mu)
    assert d + delay <= dbar * (1 + 1e-9)


class TestPerPairBounds:
    """Eq. 8's bound is indexed per pair (d_bar_lv); the matrix builder
    accepts arrays for it."""

    def test_per_location_bounds(self):
        latency = np.array([[0.01, 0.01], [0.05, 0.05]])
        bounds = np.array([0.10, 0.30])  # premium vs best-effort region
        matrix = sla_coefficient_matrix(latency, bounds, 25.0)
        # The tight region needs more servers per request everywhere.
        assert matrix[0, 0] > matrix[0, 1]
        assert matrix[1, 0] > matrix[1, 1]

    def test_full_matrix_bounds(self):
        latency = np.full((2, 2), 0.02)
        bounds = np.array([[0.1, 0.2], [0.3, 0.4]])
        matrix = sla_coefficient_matrix(latency, bounds, 25.0)
        for index, bound in np.ndenumerate(bounds):
            assert matrix[index] == pytest.approx(
                sla_coefficient(0.02, float(bound), 25.0)
            )

    def test_scalar_still_works(self):
        latency = np.full((2, 3), 0.02)
        scalar = sla_coefficient_matrix(latency, 0.15, 25.0)
        array = sla_coefficient_matrix(latency, np.full((2, 3), 0.15), 25.0)
        assert scalar == pytest.approx(array)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            sla_coefficient_matrix(np.full((1, 2), 0.02), np.array([0.1, 0.0]), 25.0)

    def test_bad_broadcast_rejected(self):
        with pytest.raises(ValueError, match="broadcast"):
            sla_coefficient_matrix(
                np.full((1, 2), 0.02), np.full((3, 1, 2), 0.15), 25.0
            )
