"""Smoke + shape tests for the figure-reproduction harnesses.

Heavy sweeps run in the benchmark suite; these tests run each harness on
reduced parameters and assert structural sanity plus the cheap shape
checks.  The full-parameter shape checks are asserted by the benches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    FigureResult,
    format_figure,
    is_mostly_decreasing,
    is_mostly_increasing,
)
from repro.experiments.fig3_prices import run_fig3
from repro.experiments.fig4_demand_tracking import run_fig4
from repro.experiments.fig5_price_response import run_fig5
from repro.experiments.fig6_horizon_smoothing import run_fig6
from repro.experiments.fig7_convergence import run_fig7
from repro.experiments.fig8_horizon_convergence import run_fig8
from repro.experiments.fig9_horizon_cost_volatile import run_fig9, volatile_traces
from repro.experiments.fig10_horizon_cost_constant import run_fig10


class TestCommon:
    def test_series_length_validated(self):
        with pytest.raises(ValueError, match="points"):
            FigureResult(
                figure="x",
                title="t",
                x_label="x",
                x=np.arange(3),
                series={"bad": np.arange(4)},
            )

    def test_failed_checks_listed(self):
        result = FigureResult(
            figure="x",
            title="t",
            x_label="x",
            x=np.arange(2),
            series={"s": np.arange(2)},
            checks={"good": True, "bad": False},
        )
        assert not result.all_checks_pass
        assert result.failed_checks() == ["bad"]

    def test_format_contains_all_series(self):
        result = FigureResult(
            figure="figX",
            title="demo",
            x_label="k",
            x=np.array([1, 2]),
            series={"alpha": np.array([1.0, 2.0]), "beta": np.array([3.0, 4.0])},
            checks={"ok": True},
            notes="hello",
        )
        text = format_figure(result)
        assert "alpha" in text and "beta" in text
        assert "[PASS] ok" in text
        assert "hello" in text

    def test_trend_helpers(self):
        assert is_mostly_decreasing(np.array([5.0, 4.0, 4.1, 3.0]), tolerance=0.2)
        assert not is_mostly_decreasing(np.array([1.0, 2.0, 3.0]))
        assert is_mostly_increasing(np.array([1.0, 2.0, 3.0]))


class TestFig3:
    def test_full_run_passes_checks(self):
        result = run_fig3()
        assert result.all_checks_pass, result.failed_checks()
        assert set(result.series) == {
            "san_jose_ca",
            "dallas_tx",
            "atlanta_ga",
            "chicago_il",
        }
        assert result.x.shape == (24,)


class TestFig4:
    def test_full_run_passes_checks(self):
        result = run_fig4()
        assert result.all_checks_pass, result.notes

    def test_series_aligned(self):
        result = run_fig4(num_hours=12)
        for series in result.series.values():
            assert series.shape == result.x.shape


class TestFig5:
    def test_full_run_passes_checks(self):
        result = run_fig5()
        assert result.all_checks_pass, result.notes

    def test_servers_nonnegative(self):
        result = run_fig5(num_hours=12)
        for name, series in result.series.items():
            if name.startswith("servers_"):
                assert np.all(series >= -1e-9)


class TestFig6:
    def test_reduced_run_shape(self):
        result = run_fig6(horizons=(1, 6, 12), num_hours=24)
        assert result.x.tolist() == [1, 6, 12]
        assert result.series["peak_step_change"][-1] <= result.series["peak_step_change"][0]


class TestFig7:
    def test_reduced_run_structure(self):
        result = run_fig7(max_players=3, bottlenecks=(50.0, 400.0), horizon=2)
        assert set(result.series) == {"capacity_50", "capacity_400"}
        assert np.all(result.series["capacity_50"] >= 1)


class TestFig8:
    def test_reduced_run_structure(self):
        result = run_fig8(horizons=(1, 3), num_players=2)
        assert result.series["iterations"].shape == (2,)
        assert np.all(result.series["cost_per_period"] > 0)


class TestFig9:
    def test_volatile_traces_properties(self, rng):
        demand, prices = volatile_traces(48, 2, 3, rng)
        assert demand.shape == (2, 48)
        assert prices.shape == (3, 48)
        assert np.all(demand > 0)
        assert np.all(prices > 0)
        # Meaningful volatility: coefficient of variation above 10%.
        cv = demand.std(axis=1) / demand.mean(axis=1)
        assert np.all(cv > 0.1)

    def test_reduced_run_structure(self):
        result = run_fig9(horizons=(1, 2, 4), num_periods=24, num_seeds=1)
        assert result.series["effective_cost"].shape == (3,)
        assert np.all(result.series["effective_cost"] > 0)


class TestFig10:
    def test_full_run_passes_checks(self):
        result = run_fig10()
        assert result.all_checks_pass, result.notes

    def test_cost_monotone_non_increasing(self):
        result = run_fig10(horizons=(1, 2, 4, 8))
        costs = result.series["effective_cost"]
        assert np.all(np.diff(costs) <= 1e-6)
