"""Tests for repro.core.state and repro.core.costs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.costs import (
    CostBreakdown,
    allocation_cost,
    reconfiguration_cost,
    total_cost,
)
from repro.core.state import Trajectory, roll_out_states


class TestRollOut:
    def test_cumulative_sum(self):
        x0 = np.zeros((1, 1))
        controls = np.array([[[1.0]], [[2.0]], [[-0.5]]])
        states = roll_out_states(x0, controls)
        assert states[:, 0, 0] == pytest.approx([1.0, 3.0, 2.5])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            roll_out_states(np.zeros((2, 2)), np.zeros((3, 1, 2)))


class TestTrajectory:
    def test_consistent_trajectory_accepted(self):
        x0 = np.ones((1, 2))
        controls = np.full((3, 1, 2), 0.5)
        states = roll_out_states(x0, controls)
        trajectory = Trajectory(x0, states, controls)
        assert trajectory.num_steps == 3

    def test_inconsistent_rejected(self):
        x0 = np.zeros((1, 1))
        controls = np.ones((2, 1, 1))
        states = np.ones((2, 1, 1))  # should be [1, 2]
        with pytest.raises(ValueError, match="state equation"):
            Trajectory(x0, states, controls)

    def test_state_at(self):
        x0 = np.zeros((1, 1))
        controls = np.ones((2, 1, 1))
        trajectory = Trajectory(x0, roll_out_states(x0, controls), controls)
        assert trajectory.state_at(0) == pytest.approx(x0)
        assert trajectory.state_at(2)[0, 0] == pytest.approx(2.0)

    def test_servers_per_datacenter_eq1(self):
        x0 = np.zeros((2, 3))
        controls = np.ones((1, 2, 3))
        trajectory = Trajectory(x0, roll_out_states(x0, controls), controls)
        assert trajectory.servers_per_datacenter() == pytest.approx(
            np.full((1, 2), 3.0)
        )

    def test_total_reconfiguration(self):
        x0 = np.zeros((1, 1))
        controls = np.array([[[2.0]], [[-1.0]]])
        trajectory = Trajectory(x0, roll_out_states(x0, controls), controls)
        assert trajectory.total_reconfiguration() == pytest.approx(3.0)


class TestCosts:
    def test_allocation_cost_eq3(self):
        states = np.array([[[1.0, 2.0], [3.0, 4.0]]])  # T=1, L=2, V=2
        prices = np.array([[2.0], [10.0]])  # p per DC
        cost = allocation_cost(states, prices)
        assert cost == pytest.approx([(1 + 2) * 2 + (3 + 4) * 10])

    def test_reconfiguration_cost_eq4(self):
        controls = np.array([[[1.0, -2.0], [0.5, 0.0]]])
        weights = np.array([2.0, 4.0])
        cost = reconfiguration_cost(controls, weights)
        assert cost == pytest.approx([2 * (1 + 4) + 4 * 0.25])

    def test_total_cost_breakdown(self):
        states = np.ones((2, 1, 1))
        controls = np.ones((2, 1, 1))
        prices = np.full((1, 2), 3.0)
        weights = np.array([2.0])
        breakdown = total_cost(states, controls, prices, weights)
        assert breakdown.allocation_total == pytest.approx(6.0)
        assert breakdown.reconfiguration_total == pytest.approx(4.0)
        assert breakdown.total == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            allocation_cost(np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            allocation_cost(np.ones((2, 2, 2)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            reconfiguration_cost(np.ones((1, 2, 2)), np.ones(3))


@settings(max_examples=40, deadline=None)
@given(
    controls=hnp.arrays(
        np.float64, (4, 2, 3), elements=st.floats(-5, 5, allow_nan=False)
    ),
)
def test_trajectory_roundtrip_property(controls):
    """roll_out_states output always forms a valid Trajectory, and the
    per-DC aggregate matches eq. 1 summation."""
    x0 = np.full((2, 3), 10.0)
    states = roll_out_states(x0, controls)
    trajectory = Trajectory(x0, states, controls)
    assert trajectory.servers_per_datacenter() == pytest.approx(states.sum(axis=2))


@settings(max_examples=40, deadline=None)
@given(
    scale=st.floats(0.1, 10.0),
    seed=st.integers(0, 500),
)
def test_cost_scaling_properties(scale, seed):
    """H scales linearly in prices; G scales quadratically in controls."""
    rng = np.random.default_rng(seed)
    states = rng.uniform(0, 5, size=(3, 2, 2))
    controls = rng.uniform(-2, 2, size=(3, 2, 2))
    prices = rng.uniform(0.5, 2, size=(2, 3))
    weights = rng.uniform(0.5, 2, size=2)
    assert allocation_cost(states, prices * scale) == pytest.approx(
        allocation_cost(states, prices) * scale
    )
    assert reconfiguration_cost(controls * scale, weights) == pytest.approx(
        reconfiguration_cost(controls, weights) * scale**2
    )
