"""Tests for the multi-domain GT-ITM generator."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.topology.bipartite import extract_bipartite_latency
from repro.topology.gtitm import GTITMConfig, build_gtitm
from repro.topology.transit_stub import (
    INTRA_TRANSIT_LATENCY_MS,
    STUB_TRANSIT_LATENCY_MS,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_transit_domains": 0},
            {"nodes_per_transit": 0},
            {"inter_domain_links": 0},
            {"transit_edge_probability": 1.5},
            {"stubs_per_transit_node": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GTITMConfig(**kwargs)


class TestBuild:
    def test_default_connected_and_typed(self):
        topology = build_gtitm()
        topology.validate()
        assert nx.is_connected(topology.graph)

    def test_counts(self):
        cfg = GTITMConfig(
            num_transit_domains=3,
            nodes_per_transit=4,
            stubs_per_transit_node=2,
            nodes_per_stub=3,
        )
        topology = build_gtitm(cfg)
        assert len(topology.transit_nodes) == 12
        assert len(topology.stub_nodes()) == 12 * 2 * 3

    def test_single_domain(self):
        cfg = GTITMConfig(num_transit_domains=1, nodes_per_transit=5)
        topology = build_gtitm(cfg)
        assert len(topology.transit_nodes) == 5
        assert nx.is_connected(topology.graph)

    def test_deterministic_by_default(self):
        a = build_gtitm()
        b = build_gtitm()
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_cross_domain_latency_grows_with_hops(self):
        cfg = GTITMConfig(num_transit_domains=2, nodes_per_transit=3)
        topology = build_gtitm(cfg, rng=np.random.default_rng(1))
        # A stub under t0 to a stub under t1 must cross at least one
        # inter-domain transit hop.
        t0 = next(n for n in topology.transit_nodes if n.startswith("t0"))
        t1 = next(n for n in topology.transit_nodes if n.startswith("t1"))
        g0 = topology.stub_gateways[t0][0]
        g1 = topology.stub_gateways[t1][0]
        latency = topology.latency(g0, g1)
        assert latency >= 2 * STUB_TRANSIT_LATENCY_MS + INTRA_TRANSIT_LATENCY_MS

    def test_feeds_bipartite_extraction(self):
        topology = build_gtitm(GTITMConfig(num_transit_domains=2))
        transit = topology.transit_nodes
        dc_nodes = {"dc0": transit[0], "dc1": transit[-1]}
        loc_nodes = {
            "v0": topology.stub_gateways[transit[0]][0],
            "v1": topology.stub_gateways[transit[-1]][0],
        }
        latency = extract_bipartite_latency(topology.graph, dc_nodes, loc_nodes)
        assert np.all(np.isfinite(latency.latency_ms))
        # Each DC is closest to its own attached stub.
        assert latency.latency("dc0", "v0") < latency.latency("dc0", "v1")

    def test_zero_stubs(self):
        topology = build_gtitm(GTITMConfig(stubs_per_transit_node=0))
        assert topology.stub_nodes() == []
