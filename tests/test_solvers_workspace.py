"""Tests for the persistent QP workspace (repro.solvers.workspace)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dspp import DSPPWorkspace, solve_dspp
from repro.core.instance import DSPPInstance
from repro.core.matrices import build_qp_structure, build_qp_vectors
from repro.solvers.qp import QPSettings, QPStatus, solve_qp
from repro.solvers.workspace import QPWorkspace
from repro.verify.generators import (
    TIERS,
    random_demand,
    random_instance,
    random_prices,
    random_qp,
)


def _random_qp(rng, n=8, m=12):
    """A strongly convex random QP (unique optimum) with finite box rows."""
    M = rng.normal(size=(n, n))
    P = sp.csc_matrix(M @ M.T + n * np.eye(n))
    q = rng.normal(size=n)
    A = sp.csc_matrix(rng.normal(size=(m, n)))
    center = rng.normal(size=m)
    width = rng.uniform(0.5, 2.0, size=m)
    return P, q, A, center - width, center + width


def _perturb(rng, q, l, u, scale=0.1):
    q2 = q + scale * rng.normal(size=q.size)
    shift = scale * rng.normal(size=l.size)
    return q2, l + shift, u + shift


class TestWorkspaceEquivalence:
    def test_matches_solve_qp_across_random_updates(self, rng):
        P, q, A, l, u = _random_qp(rng)
        ws = QPWorkspace()
        ws.setup(P, A, q=q, l=l, u=u)
        for _ in range(5):
            cold = solve_qp(P, q, A, l, u)
            warm = ws.solve()
            assert warm.status is QPStatus.OPTIMAL
            # Strongly convex: the optimum is unique, so x must agree too.
            assert warm.objective == pytest.approx(cold.objective, rel=1e-6, abs=1e-8)
            np.testing.assert_allclose(warm.x, cold.x, rtol=1e-4, atol=1e-5)
            q, l, u = _perturb(rng, q, l, u)
            ws.update(q=q, l=l, u=u)

    def test_early_polish_matches_default_tolerances(self, rng):
        P, q, A, l, u = _random_qp(rng)
        ws = QPWorkspace(settings=QPSettings(early_polish=True))
        ws.setup(P, A, q=q, l=l, u=u)
        for _ in range(4):
            cold = solve_qp(P, q, A, l, u)
            warm = ws.solve()
            assert warm.status is QPStatus.OPTIMAL
            # The verified-early-polish path certifies against the strict
            # tolerances, so accuracy must not degrade.
            assert warm.objective == pytest.approx(cold.objective, rel=1e-6, abs=1e-8)
            q, l, u = _perturb(rng, q, l, u)
            ws.update(q=q, l=l, u=u)

    def test_cached_active_set_skips_admm_on_repeat_solve(self, rng):
        P, q, A, l, u = _random_qp(rng)
        ws = QPWorkspace(settings=QPSettings(early_polish=True))
        ws.setup(P, A, q=q, l=l, u=u)
        first = ws.solve()
        assert first.status is QPStatus.OPTIMAL
        # Identical data again: the cached active-set system is certified
        # optimal without a single ADMM iteration.
        ws.update(q=q, l=l, u=u)
        second = ws.solve()
        assert second.status is QPStatus.OPTIMAL
        assert second.iterations == 0
        np.testing.assert_allclose(second.x, first.x, rtol=1e-6, atol=1e-8)

    def test_explicit_warm_start_still_accepted(self, rng):
        P, q, A, l, u = _random_qp(rng)
        cold = solve_qp(P, q, A, l, u)
        ws = QPWorkspace()
        ws.setup(P, A, q=q, l=l, u=u)
        warm = ws.solve(warm_start=cold)
        assert warm.status is QPStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6, abs=1e-8)


class TestFactorizationCaching:
    def test_updates_do_not_refactorize_same_pattern(self, rng):
        P, q, A, l, u = _random_qp(rng)
        # Disable adaptive rho so the only legal factorizations are setup
        # and equality-pattern changes.
        ws = QPWorkspace(settings=QPSettings(adaptive_rho_interval=0))
        ws.setup(P, A, q=q, l=l, u=u)
        assert ws.num_setups == 1
        assert ws.num_factorizations == 1
        for k in range(3):
            q, l, u = _perturb(rng, q, l, u)
            ws.update(q=q, l=l, u=u)
            ws.solve()
        assert ws.num_setups == 1
        assert ws.num_updates == 3
        assert ws.num_factorizations == 1

    def test_equality_pattern_change_refactorizes(self, rng):
        P, q, A, l, u = _random_qp(rng)
        ws = QPWorkspace(settings=QPSettings(adaptive_rho_interval=0))
        ws.setup(P, A, q=q, l=l, u=u)
        before = ws.num_factorizations
        u2 = u.copy()
        u2[0] = l[0]  # row 0 becomes an equality
        ws.update(u=u2)
        assert ws.num_factorizations == before + 1
        solution = ws.solve()
        assert solution.status is QPStatus.OPTIMAL
        assert abs(solution.x @ ws.problem.A[0].toarray().ravel() - l[0]) < 1e-4

    def test_max_iterations_reports_cumulative_count(self, rng):
        P, q, A, l, u = _random_qp(rng)
        strict = QPSettings(
            eps_abs=1e-14,
            eps_rel=1e-14,
            max_iterations=30,
            polish=False,
            adaptive_rho_interval=0,
        )
        ws = QPWorkspace(settings=strict)
        ws.setup(P, A, q=q, l=l, u=u)
        first = ws.solve()
        assert first.status is QPStatus.MAX_ITERATIONS
        q2, l2, u2 = _perturb(rng, q, l, u, scale=1.0)
        ws.update(q=q2, l=l2, u=u2)
        # Warm-seeded solve exhausts the budget, then the internal cold
        # restart runs another full pass; the count must cover both.
        second = ws.solve()
        assert second.status is QPStatus.MAX_ITERATIONS
        assert second.iterations == 2 * strict.max_iterations


class TestEdgeCases:
    def test_unconstrained_problem(self, rng):
        n = 6
        M = rng.normal(size=(n, n))
        P = sp.csc_matrix(M @ M.T + n * np.eye(n))
        q = rng.normal(size=n)
        A = sp.csc_matrix((0, n))
        ws = QPWorkspace()
        ws.setup(P, A, q=q)
        solution = ws.solve()
        assert solution.status is QPStatus.OPTIMAL
        expected = np.linalg.solve(P.toarray(), -q)
        # The workspace solves the sigma-regularized KKT system, so allow
        # the regularization-sized bias.
        np.testing.assert_allclose(solution.x, expected, rtol=1e-4, atol=1e-5)

    def test_solve_before_setup_raises(self):
        ws = QPWorkspace()
        assert not ws.is_setup
        with pytest.raises(RuntimeError, match="setup"):
            ws.solve()
        with pytest.raises(RuntimeError, match="setup"):
            ws.update(q=np.zeros(3))
        with pytest.raises(RuntimeError, match="setup"):
            _ = ws.problem

    def test_update_validates_shapes_and_bounds(self, rng):
        P, q, A, l, u = _random_qp(rng)
        ws = QPWorkspace()
        ws.setup(P, A, q=q, l=l, u=u)
        with pytest.raises(ValueError, match="q must have shape"):
            ws.update(q=np.zeros(q.size + 1))
        with pytest.raises(ValueError, match="l and u"):
            ws.update(l=np.zeros(l.size + 1))
        with pytest.raises(ValueError, match="infeasible"):
            ws.update(l=u + 1.0, u=u)

    def test_infeasible_problem_detected(self, rng):
        n = 4
        P = sp.identity(n, format="csc")
        q = np.zeros(n)
        # x0 >= 1 and x0 <= -1 simultaneously.
        A = sp.csc_matrix(np.vstack([np.eye(n)[0], np.eye(n)[0]]))
        l = np.array([1.0, -np.inf])
        u = np.array([np.inf, -1.0])
        ws = QPWorkspace()
        ws.setup(P, A, q=q, l=l, u=u)
        solution = ws.solve()
        assert solution.status is QPStatus.PRIMAL_INFEASIBLE


def _structured_problem(rng, horizon=5, elastic=False):
    """A stacked-horizon DSPP QP plus its block view, from the fuzz
    generators (feasible by construction at moderate load)."""
    tier = TIERS["small"]
    instance = random_instance(rng, tier)
    demand = random_demand(rng, instance, horizon, load=0.5)
    prices = random_prices(rng, instance, horizon)
    structure = build_qp_structure(instance, horizon, elastic=elastic)
    penalty = 10.0 if elastic else None
    q, l, u = build_qp_vectors(
        structure, instance, demand, prices, demand_slack_penalty=penalty
    )
    return instance, structure, q, l, u


@pytest.mark.parametrize("backend", ["sparse", "banded", "krylov", "auto"])
class TestBlockBackendWorkspace:
    """QPWorkspace over a stacked-horizon QP, parametrized across KKT
    backends.  The banded path factors the identical Ruiz-scaled KKT
    system through the block-tridiagonal recursion, so every backend must
    reproduce the cold sparse reference solve for solve."""

    def test_matches_cold_across_forecast_updates(self, rng, backend):
        instance, structure, q, l, u = _structured_problem(rng)
        ws = QPWorkspace(settings=QPSettings(early_polish=True, kkt_backend=backend))
        ws.setup(structure.P, structure.A, q=q, l=l, u=u, blocks=structure.blocks)
        horizon = structure.blocks.num_steps
        for _ in range(3):
            warm = ws.solve()
            cold = solve_qp(
                structure.P, q, structure.A, l, u,
                settings=QPSettings(early_polish=True),
            )
            assert warm.status is QPStatus.OPTIMAL
            assert warm.objective == pytest.approx(
                cold.objective, rel=1e-6, abs=1e-8
            )
            demand = random_demand(rng, instance, horizon, load=0.5)
            prices = random_prices(rng, instance, horizon)
            q, l, u = build_qp_vectors(structure, instance, demand, prices)
            ws.update(q=q, l=l, u=u)

    def test_elastic_structure_supported(self, rng, backend):
        _, structure, q, l, u = _structured_problem(rng, elastic=True)
        ws = QPWorkspace(settings=QPSettings(early_polish=True, kkt_backend=backend))
        ws.setup(structure.P, structure.A, q=q, l=l, u=u, blocks=structure.blocks)
        warm = ws.solve()
        cold = solve_qp(
            structure.P, q, structure.A, l, u,
            settings=QPSettings(early_polish=True),
        )
        assert warm.status is QPStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6, abs=1e-8)

    def test_single_period_horizon(self, rng, backend):
        _, structure, q, l, u = _structured_problem(rng, horizon=1)
        ws = QPWorkspace(settings=QPSettings(early_polish=True, kkt_backend=backend))
        ws.setup(structure.P, structure.A, q=q, l=l, u=u, blocks=structure.blocks)
        warm = ws.solve()
        cold = solve_qp(
            structure.P, q, structure.A, l, u,
            settings=QPSettings(early_polish=True),
        )
        assert warm.status is QPStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6, abs=1e-8)


class TestBandedBackendDispatch:
    @pytest.mark.parametrize("backend", ["banded", "krylov"])
    def test_forced_block_backend_without_blocks_raises(self, rng, backend):
        P, q, A, l, u = _random_qp(rng)
        ws = QPWorkspace(settings=QPSettings(kkt_backend=backend))
        with pytest.raises(ValueError, match="block"):
            ws.setup(P, A, q=q, l=l, u=u)

    def test_backends_run_identical_admm_schedules(self, rng):
        # The KKT solve is the only thing that differs, and both backends
        # refine it far below ADMM's working precision — so the iteration
        # counts (and therefore the whole trajectory schedule) coincide.
        _, structure, q, l, u = _structured_problem(rng)
        results = {}
        for backend in ("sparse", "banded", "krylov"):
            ws = QPWorkspace(
                settings=QPSettings(early_polish=True, kkt_backend=backend)
            )
            ws.setup(
                structure.P, structure.A, q=q, l=l, u=u, blocks=structure.blocks
            )
            results[backend] = ws.solve()
        for backend in ("banded", "krylov"):
            assert results["sparse"].iterations == results[backend].iterations
            assert results[backend].objective == pytest.approx(
                results["sparse"].objective, rel=1e-9, abs=1e-9
            )


class TestDSPPWorkspace:
    def test_mpc_sequence_matches_cold_with_capacity_swap(self, small_instance, rng):
        T = 3
        num_steps = 5
        ws = DSPPWorkspace()
        state = small_instance.initial_state
        capacities = small_instance.capacities
        for k in range(num_steps):
            demand = rng.uniform(5.0, 20.0, size=(2, T))
            prices = rng.uniform(0.5, 2.0, size=(2, T))
            if k == 2:  # capacity swap mid-sequence: still a vector update
                capacities = capacities * np.array([0.5, 2.0])
            instance = replace(
                small_instance, initial_state=state, capacities=capacities
            )
            cold = solve_dspp(instance, demand, prices)
            warm = solve_dspp(instance, demand, prices, workspace=ws)
            # The stacked P is only PSD, so trajectories may differ along
            # flat directions; the objective is the well-defined quantity.
            assert warm.objective == pytest.approx(
                cold.objective, rel=1e-5, abs=1e-6
            )
            state = np.maximum(state + cold.first_control, 0.0)
        assert ws.num_setups == 1
        assert ws.num_updates == num_steps - 1

    def test_horizon_change_rebuilds_transparently(self, small_instance, rng):
        ws = DSPPWorkspace()
        demand3 = rng.uniform(5.0, 20.0, size=(2, 3))
        prices3 = rng.uniform(0.5, 2.0, size=(2, 3))
        solve_dspp(small_instance, demand3, prices3, workspace=ws)
        demand4 = rng.uniform(5.0, 20.0, size=(2, 4))
        prices4 = rng.uniform(0.5, 2.0, size=(2, 4))
        warm = solve_dspp(small_instance, demand4, prices4, workspace=ws)
        cold = solve_dspp(small_instance, demand4, prices4)
        assert ws.num_setups == 2
        assert warm.objective == pytest.approx(cold.objective, rel=1e-5, abs=1e-6)

    def test_invalidate_drops_cache(self, small_instance, rng):
        ws = DSPPWorkspace()
        demand = rng.uniform(5.0, 20.0, size=(2, 3))
        prices = rng.uniform(0.5, 2.0, size=(2, 3))
        solve_dspp(small_instance, demand, prices, workspace=ws)
        ws.invalidate()
        solve_dspp(small_instance, demand, prices, workspace=ws)
        assert ws.num_setups == 1  # fresh inner workspace after invalidate

    def test_caller_settings_honoured_verbatim(self, small_instance, rng):
        ws = DSPPWorkspace()
        demand = rng.uniform(5.0, 20.0, size=(2, 3))
        prices = rng.uniform(0.5, 2.0, size=(2, 3))
        settings = QPSettings(polish=False)
        warm = solve_dspp(
            small_instance, demand, prices, settings=settings, workspace=ws
        )
        assert warm.qp.polished is False


class TestWorkspaceProperties:
    """Hypothesis-driven equivalence: warm/crossover solves vs fresh solve_qp.

    The directed tests above pin a handful of update walks; these
    properties draw the QP, the walk length and the perturbation scale
    from hypothesis, using the feasible-by-construction generator from
    ``repro.verify`` so every step of the walk keeps a nonempty polytope
    (updates translate the constraint bounds by ``A @ delta``, which moves
    the hidden witness along with the feasible set).
    """

    @staticmethod
    def _walk(seed, num_updates, scale, qp_settings):
        rng = np.random.default_rng([seed, num_updates])
        P, q, A, l, u = random_qp(rng, "small")
        dense_A = A.toarray()
        ws = QPWorkspace(settings=qp_settings)
        ws.setup(P, A, q=q, l=l, u=u)
        for _ in range(num_updates + 1):
            warm = ws.solve()
            cold = solve_qp(P, q, A, l, u, settings=qp_settings)
            assert warm.status is QPStatus.OPTIMAL
            assert cold.status is QPStatus.OPTIMAL
            # Strongly convex: unique optimum, so x must agree as well.
            assert warm.objective == pytest.approx(
                cold.objective, rel=5e-5, abs=1e-6
            )
            np.testing.assert_allclose(warm.x, cold.x, rtol=1e-3, atol=1e-3)
            q = q + scale * rng.normal(size=q.size)
            shift = dense_A @ (scale * rng.normal(size=q.size))
            l = l + shift
            u = u + shift
            ws.update(q=q, l=l, u=u)

    @given(
        seed=st.integers(0, 2**31 - 1),
        num_updates=st.integers(1, 4),
        scale=st.floats(0.01, 0.5),
    )
    @settings(max_examples=15)
    def test_warm_matches_cold_on_random_walks(self, seed, num_updates, scale):
        self._walk(seed, num_updates, scale, QPSettings())

    @given(
        seed=st.integers(0, 2**31 - 1),
        num_updates=st.integers(1, 4),
        scale=st.floats(0.01, 0.5),
    )
    @settings(max_examples=15)
    def test_crossover_matches_cold_on_random_walks(self, seed, num_updates, scale):
        self._walk(seed, num_updates, scale, QPSettings(early_polish=True))
