"""Tests for repro.core.instance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import DSPPInstance


def _make(**overrides):
    defaults = dict(
        datacenters=("dc0", "dc1"),
        locations=("v0", "v1", "v2"),
        sla_coefficients=np.full((2, 3), 0.1),
        reconfiguration_weights=np.ones(2),
        capacities=np.full(2, 50.0),
        initial_state=np.zeros((2, 3)),
    )
    defaults.update(overrides)
    return DSPPInstance(**defaults)


class TestValidation:
    def test_valid_instance(self):
        instance = _make()
        assert instance.num_datacenters == 2
        assert instance.num_locations == 3
        assert instance.num_pairs == 6

    def test_rejects_wrong_sla_shape(self):
        with pytest.raises(ValueError, match="sla_coefficients"):
            _make(sla_coefficients=np.full((3, 2), 0.1))

    def test_rejects_nonpositive_sla(self):
        bad = np.full((2, 3), 0.1)
        bad[0, 0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            _make(sla_coefficients=bad)

    def test_rejects_negative_initial_state(self):
        state = np.zeros((2, 3))
        state[0, 0] = -1.0
        with pytest.raises(ValueError, match="nonnegative"):
            _make(initial_state=state)

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            _make(reconfiguration_weights=np.array([1.0, 0.0]))

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            _make(capacities=np.array([50.0, -1.0]))

    def test_rejects_nonpositive_server_size(self):
        with pytest.raises(ValueError):
            _make(server_size=0.0)

    def test_rejects_unreachable_location(self):
        coefficients = np.full((2, 3), 0.1)
        coefficients[:, 1] = np.inf
        with pytest.raises(ValueError, match="unreachable"):
            _make(sla_coefficients=coefficients)

    def test_inf_allowed_if_each_location_served_somewhere(self):
        coefficients = np.full((2, 3), 0.1)
        coefficients[0, 1] = np.inf
        instance = _make(sla_coefficients=coefficients)
        assert np.isinf(instance.sla_coefficients[0, 1])

    def test_rejects_all_inf(self):
        with pytest.raises(ValueError):
            _make(sla_coefficients=np.full((2, 3), np.inf))

    def test_rejects_empty_sites(self):
        with pytest.raises(ValueError):
            _make(datacenters=())


class TestDerived:
    def test_demand_coefficients_inverse(self):
        instance = _make()
        assert instance.demand_coefficients == pytest.approx(np.full((2, 3), 10.0))

    def test_demand_coefficients_zero_for_inf(self):
        coefficients = np.full((2, 3), 0.1)
        coefficients[1, 2] = np.inf
        instance = _make(sla_coefficients=coefficients)
        assert instance.demand_coefficients[1, 2] == 0.0

    def test_with_initial_state_copies(self):
        instance = _make()
        state = np.ones((2, 3))
        updated = instance.with_initial_state(state)
        state[0, 0] = 99.0
        assert updated.initial_state[0, 0] == 1.0
        assert instance.initial_state[0, 0] == 0.0  # original untouched

    def test_with_capacities(self):
        instance = _make()
        updated = instance.with_capacities(np.array([7.0, 9.0]))
        assert updated.capacities == pytest.approx([7.0, 9.0])
        assert instance.capacities == pytest.approx([50.0, 50.0])

    def test_max_supportable_demand(self):
        instance = _make()
        # Each DC can host 50 servers; a=0.1 -> 500 req per DC per location.
        assert instance.max_supportable_demand() == pytest.approx(np.full(3, 1000.0))

    def test_max_supportable_demand_scales_with_server_size(self):
        instance = _make(server_size=2.0)
        assert instance.max_supportable_demand() == pytest.approx(np.full(3, 500.0))
