"""Tests for the simulation package (scenario, monitoring, metrics, engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.prediction.oracle import OraclePredictor
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import MetricsCollector
from repro.simulation.monitoring import MonitoringModule
from repro.simulation.scenario import (
    build_paper_scenario,
    build_small_scenario,
)


class TestMonitoring:
    def test_record_and_history(self):
        monitor = MonitoringModule(num_locations=2, num_datacenters=3)
        monitor.record([1.0, 2.0], [0.1, 0.2, 0.3])
        monitor.record([3.0, 4.0], [0.4, 0.5, 0.6])
        assert len(monitor) == 2
        assert monitor.demand_history() == pytest.approx(
            np.array([[1.0, 3.0], [2.0, 4.0]])
        )
        assert monitor.price_history().shape == (3, 2)
        assert monitor.latest.period == 1

    def test_empty_histories(self):
        monitor = MonitoringModule(1, 1)
        assert monitor.demand_history().shape == (1, 0)
        with pytest.raises(LookupError):
            monitor.latest

    def test_validation(self):
        monitor = MonitoringModule(2, 1)
        with pytest.raises(ValueError, match="demand"):
            monitor.record([1.0], [1.0])
        with pytest.raises(ValueError, match="prices"):
            monitor.record([1.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="nonnegative"):
            monitor.record([-1.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            MonitoringModule(0, 1)

    def test_record_copies_inputs(self):
        monitor = MonitoringModule(2, 1)
        demand = np.array([1.0, 2.0])
        monitor.record(demand, [0.5])
        demand[0] = 99.0  # mutating the caller's array must not leak in
        assert monitor.latest.demand == pytest.approx([1.0, 2.0])

    def test_periods_count_from_zero(self):
        monitor = MonitoringModule(1, 1)
        observations = [monitor.record([float(k)], [1.0]) for k in range(3)]
        assert [o.period for o in observations] == [0, 1, 2]
        assert monitor.latest.period == 2

    def test_matrix_inputs_are_flattened(self):
        monitor = MonitoringModule(2, 2)
        monitor.record(np.array([[1.0], [2.0]]), np.array([[3.0, 4.0]]))
        assert monitor.demand_history()[:, 0] == pytest.approx([1.0, 2.0])
        assert monitor.price_history()[:, 0] == pytest.approx([3.0, 4.0])

    def test_empty_price_history_shape(self):
        monitor = MonitoringModule(2, 3)
        assert monitor.price_history().shape == (3, 0)


class TestMetrics:
    def test_summary_aggregation(self):
        collector = MetricsCollector()
        allocation = np.array([[2.0], [3.0]])
        control = np.array([[1.0], [-1.0]])
        prices = np.array([2.0, 1.0])
        weights = np.array([1.0, 2.0])
        collector.record_period(allocation, control, prices, weights, unserved=1.5)
        summary = collector.summary()
        assert summary.total_allocation_cost == pytest.approx(2 * 2 + 3 * 1)
        assert summary.total_reconfiguration_cost == pytest.approx(1 + 2)
        assert summary.total_reconfiguration_magnitude == pytest.approx(2.0)
        assert summary.total_unserved_demand == pytest.approx(1.5)
        assert summary.periods == 1

    def test_latency_weighting(self):
        collector = MetricsCollector()
        allocation = np.ones((1, 2))
        control = np.zeros((1, 2))
        assignment = np.array([[3.0, 1.0]])
        latency = np.array([[10.0, 50.0]])
        collector.record_period(
            allocation,
            control,
            np.ones(1),
            np.ones(1),
            assignment=assignment,
            latency=latency,
        )
        summary = collector.summary()
        assert summary.mean_latency_ms == pytest.approx((3 * 10 + 1 * 50) / 4)

    def test_no_latency_is_nan(self):
        collector = MetricsCollector()
        collector.record_period(np.ones((1, 1)), np.zeros((1, 1)), np.ones(1), np.ones(1))
        assert np.isnan(collector.summary().mean_latency_ms)


class TestSmallScenario:
    def test_structure(self):
        scenario = build_small_scenario(num_periods=6)
        assert scenario.num_periods == 6
        assert scenario.demand.shape[0] == scenario.instance.num_locations
        assert scenario.prices.shape[0] == scenario.instance.num_datacenters
        assert np.isfinite(scenario.instance.sla_coefficients).all()

    def test_reproducible(self):
        a = build_small_scenario(seed=4)
        b = build_small_scenario(seed=4)
        assert a.demand == pytest.approx(b.demand)
        assert a.prices == pytest.approx(b.prices)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_small_scenario(num_periods=1)


class TestPaperScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_paper_scenario(num_periods=6, total_peak_rate=500.0, seed=1)

    def test_paper_dimensions(self, scenario):
        assert scenario.instance.num_datacenters == 4
        assert scenario.instance.num_locations == 24
        assert scenario.instance.capacities == pytest.approx(np.full(4, 2000.0))

    def test_every_pair_feasible_under_default_sla(self, scenario):
        assert np.isfinite(scenario.instance.sla_coefficients).all()

    def test_sla_coefficients_distance_sensitive(self, scenario):
        # The spread between easiest and hardest pair should be material.
        a = scenario.instance.sla_coefficients
        assert a.max() / a.min() > 1.2

    def test_wholesale_traces_exposed(self, scenario):
        assert set(scenario.wholesale_traces) == {
            "san_jose_ca",
            "houston_tx",
            "atlanta_ga",
            "chicago_il",
        }

    def test_deterministic_demand_mode(self):
        scenario = build_paper_scenario(
            num_periods=4, total_peak_rate=500.0, stochastic_demand=False, seed=1
        )
        again = build_paper_scenario(
            num_periods=4, total_peak_rate=500.0, stochastic_demand=False, seed=1
        )
        assert scenario.demand == pytest.approx(again.demand)


class TestEngine:
    def test_engine_agrees_with_closed_loop_costs(self):
        scenario = build_small_scenario(num_periods=8, seed=2)
        controller_a = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=3),
        )
        controller_b = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=3),
        )
        engine = SimulationEngine(scenario, controller_a)
        engine_result = engine.run()
        loop_result = run_closed_loop(controller_b, scenario.demand, scenario.prices)
        assert engine_result.summary.total_cost == pytest.approx(
            loop_result.total_cost, rel=1e-6
        )
        assert engine_result.states == pytest.approx(loop_result.trajectory.states)

    def test_engine_records_monitoring(self):
        scenario = build_small_scenario(num_periods=5)
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=2),
        )
        result = SimulationEngine(scenario, controller).run()
        assert len(result.monitoring) == 4
        assert len(result.routing) == 4

    def test_engine_sla_holds_with_oracle(self):
        scenario = build_small_scenario(num_periods=8, seed=3)
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=3),
        )
        result = SimulationEngine(scenario, controller).run()
        assert result.summary.total_unserved_demand == pytest.approx(0.0, abs=1e-6)
        assert result.summary.sla_violation_periods == 0
        assert result.summary.mean_latency_ms <= scenario.sla.max_latency

    def test_engine_rejects_mismatched_controller(self):
        scenario = build_small_scenario(num_periods=4)
        other = build_small_scenario(num_periods=4, num_datacenters=3)
        controller = MPCController(
            other.instance,
            OraclePredictor(other.demand),
            OraclePredictor(other.prices),
        )
        with pytest.raises(ValueError):
            SimulationEngine(scenario, controller)
