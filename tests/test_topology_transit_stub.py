"""Tests for repro.topology.transit_stub."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.geo import ACCESS_CITIES
from repro.topology.rocketfuel import build_tier1_backbone
from repro.topology.transit_stub import (
    INTRA_STUB_LATENCY_MS,
    INTRA_TRANSIT_LATENCY_MS,
    STUB_TRANSIT_LATENCY_MS,
    TransitStubConfig,
    build_transit_stub,
)


@pytest.fixture(scope="module")
def backbone():
    return build_tier1_backbone(cities=ACCESS_CITIES[:6], k_nearest=2)


class TestPaperConstants:
    def test_latency_constants_match_paper(self):
        assert INTRA_TRANSIT_LATENCY_MS == 20.0
        assert STUB_TRANSIT_LATENCY_MS == 5.0
        assert INTRA_STUB_LATENCY_MS == 2.0


class TestConfig:
    def test_defaults_valid(self):
        TransitStubConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stubs_per_transit": -1},
            {"nodes_per_stub": 0},
            {"stub_edge_probability": 1.5},
            {"intra_stub_latency_ms": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TransitStubConfig(**kwargs)


class TestConstruction:
    def test_structure(self, backbone):
        topology = build_transit_stub(backbone)
        topology.validate()
        assert set(topology.transit_nodes) == set(backbone.graph.nodes)
        # 1 stub of 3 nodes per transit by default.
        assert len(topology.stub_nodes()) == backbone.num_pops * 3

    def test_transit_links_use_paper_latency(self, backbone):
        topology = build_transit_stub(backbone)
        for a, b, data in topology.graph.edges(data=True):
            if data["tier"] == "intra_transit":
                assert data["latency_ms"] == INTRA_TRANSIT_LATENCY_MS
                assert data["measured_latency_ms"] is not None

    def test_stub_gateway_attachment(self, backbone):
        topology = build_transit_stub(backbone)
        for transit, gateways in topology.stub_gateways.items():
            for gateway in gateways:
                assert topology.graph.has_edge(transit, gateway)
                assert (
                    topology.graph.edges[transit, gateway]["latency_ms"]
                    == STUB_TRANSIT_LATENCY_MS
                )

    def test_multiple_stubs_per_transit(self, backbone):
        config = TransitStubConfig(stubs_per_transit=3, nodes_per_stub=2)
        topology = build_transit_stub(backbone, config)
        assert len(topology.stub_nodes()) == backbone.num_pops * 6
        for gateways in topology.stub_gateways.values():
            assert len(gateways) == 3

    def test_stub_to_stub_path_crosses_transit(self, backbone):
        topology = build_transit_stub(backbone)
        transit_a = topology.transit_nodes[0]
        transit_b = topology.transit_nodes[1]
        stub_a = topology.stub_gateways[transit_a][0]
        stub_b = topology.stub_gateways[transit_b][0]
        latency = topology.latency(stub_a, stub_b)
        # At least two stub-transit attachments plus one transit hop.
        assert latency >= 2 * STUB_TRANSIT_LATENCY_MS + INTRA_TRANSIT_LATENCY_MS

    def test_deterministic_with_default_rng(self, backbone):
        a = build_transit_stub(backbone)
        b = build_transit_stub(backbone)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_zero_stubs(self, backbone):
        config = TransitStubConfig(stubs_per_transit=0)
        topology = build_transit_stub(backbone, config)
        assert topology.stub_nodes() == []

    def test_extra_stub_edges_respect_probability_bounds(self, backbone):
        config = TransitStubConfig(
            stubs_per_transit=1, nodes_per_stub=5, stub_edge_probability=1.0
        )
        topology = build_transit_stub(backbone, config, rng=np.random.default_rng(1))
        # With p=1 every stub is a clique of 5: 10 intra-stub edges each.
        intra = [
            (a, b)
            for a, b, d in topology.graph.edges(data=True)
            if d["tier"] == "intra_stub"
        ]
        assert len(intra) == backbone.num_pops * 10
