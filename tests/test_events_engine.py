"""Request-level replay engine (repro.events.engine).

The load-bearing guarantees:

* on a single-queue workload the event loop's sojourn times match the
  scalar Lindley recursion *exactly* (atol 1e-12) — the engine is the
  vectorized kernel, not an approximation of it;
* replays are bitwise identical at any ``jobs`` count and under any
  collector set;
* a mid-horizon outage strands in-flight requests without losing or
  duplicating any request (conservation asserted against the arrival
  process directly).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.arrivals import PoissonArrivals, TraceArrivals
from repro.events.collectors import (
    EventLogCollector,
    LatencyCollector,
    ThroughputCollector,
)
from repro.events.engine import _TAG_SERVICE, EventEngine, ReplayConfig
from repro.events.records import (
    STATUS_DROPPED,
    STATUS_SERVED,
    STATUS_STRANDED,
    EventLog,
    logs_equal,
)
from repro.simulation.failures import OutageEvent
from repro.simulation.scenario import build_small_scenario


def _scalar_lindley_sojourns(arrival_times, services):
    """Reference per-arrival Lindley recursion (the pre-vectorization loop)."""
    sojourns = np.empty(arrival_times.size)
    workload = 0.0
    for i in range(arrival_times.size):
        if i > 0:
            gap = arrival_times[i] - arrival_times[i - 1]
            workload = max(0.0, workload + services[i - 1] - gap)
        sojourns[i] = workload + services[i]
    return sojourns


def _single_queue_setup(rate, num_periods=3, scenario_seed=0):
    """One DC, one location, one server, everything admitted."""
    scenario = build_small_scenario(
        num_periods=num_periods, num_datacenters=1, num_locations=1, seed=scenario_seed
    )
    scenario = dataclasses.replace(
        scenario, demand=np.full((1, num_periods), float(rate))
    )
    coeff = float(scenario.instance.demand_coefficients[0, 0])
    alloc = 0.95  # fractional => ceil gives exactly one server
    assert alloc * coeff > rate, "setup must admit every request"
    states = np.full((num_periods - 1, 1, 1), alloc)
    return scenario, states


class TestSingleQueueExactness:
    def test_sojourns_match_scalar_lindley_exactly(self):
        scenario, states = _single_queue_setup(rate=10.0, num_periods=4)
        log_collector = EventLogCollector()
        config = ReplayConfig(seed=17, period_duration=100.0)
        engine = EventEngine(
            scenario, states, config=config, collectors=(log_collector,)
        )
        result = engine.run(jobs=1)
        assert result.total_dropped == 0
        assert result.total_stranded == 0
        assert result.total_requests > 1000

        mu = scenario.sla.service_rate
        process = PoissonArrivals(scenario.demand)
        for batch in log_collector.batches:
            offsets = process.arrivals(17, batch.period, 0, engine.period_duration)
            services = (
                np.random.default_rng(
                    [17, _TAG_SERVICE, batch.period, 0]
                ).standard_exponential(offsets.size)
                / mu
            )
            expected = _scalar_lindley_sojourns(offsets, services)
            np.testing.assert_allclose(batch.sojourn, expected, rtol=0, atol=1e-12)
            np.testing.assert_allclose(batch.service, services, rtol=0, atol=1e-12)
            np.testing.assert_allclose(
                batch.wait, expected - services, rtol=0, atol=1e-12
            )
            network = float(scenario.latency.latency_ms[0, 0]) * 1e-3
            np.testing.assert_allclose(
                batch.latency, network + expected, rtol=0, atol=1e-12
            )

    @given(seed=st.integers(0, 10**6), rate=st.floats(2.0, 12.0))
    @settings(max_examples=10)
    def test_exactness_property(self, seed, rate):
        scenario, states = _single_queue_setup(rate=rate)
        log_collector = EventLogCollector()
        engine = EventEngine(
            scenario,
            states,
            config=ReplayConfig(seed=seed, period_duration=20.0),
            collectors=(log_collector,),
        )
        engine.run(jobs=1)
        mu = scenario.sla.service_rate
        process = PoissonArrivals(scenario.demand)
        for batch in log_collector.batches:
            offsets = process.arrivals(seed, batch.period, 0, 20.0)
            services = (
                np.random.default_rng(
                    [seed, _TAG_SERVICE, batch.period, 0]
                ).standard_exponential(offsets.size)
                / mu
            )
            expected = _scalar_lindley_sojourns(offsets, services)
            np.testing.assert_allclose(batch.sojourn, expected, rtol=0, atol=1e-12)


def _small_replay(seed=2, jobs=1, collectors=None, outages=()):
    scenario = build_small_scenario(
        num_periods=5, num_datacenters=2, num_locations=3, seed=9
    )
    coeff = scenario.instance.demand_coefficients
    # 0.6x demand capacity per DC: 1.2x total, so drops stay possible
    # per pair while the system as a whole is adequately provisioned.
    alloc = 0.6 * scenario.demand.mean() / coeff
    states = np.tile(alloc[None], (scenario.num_periods - 1, 1, 1))
    log_collector = EventLogCollector()
    engine = EventEngine(
        scenario,
        states,
        config=ReplayConfig(seed=seed, total_requests=4000.0),
        outages=list(outages),
        collectors=(log_collector, *(collectors or ())),
    )
    result = engine.run(jobs=jobs)
    return engine, result, log_collector


class TestDeterminism:
    def test_bitwise_identical_across_jobs_and_collector_sets(self):
        _, result_a, log_a = _small_replay(
            jobs=1, collectors=(LatencyCollector(), ThroughputCollector())
        )
        _, result_b, log_b = _small_replay(jobs=2, collectors=())
        assert logs_equal(log_a.log(), log_b.log())
        np.testing.assert_array_equal(result_a.status_counts, result_b.status_counts)

    def test_different_seeds_differ(self):
        _, _, log_a = _small_replay(seed=2)
        _, _, log_b = _small_replay(seed=3)
        assert not logs_equal(log_a.log(), log_b.log())

    def test_logs_equal_detects_shape_and_value_diffs(self):
        _, _, log_collector = _small_replay()
        log = log_collector.log()
        assert logs_equal(log, log)
        truncated = EventLog(
            **{
                name: getattr(log, name)[:-1]
                for name in (
                    "period",
                    "arrival",
                    "location",
                    "datacenter",
                    "server",
                    "service",
                    "wait",
                    "sojourn",
                    "latency",
                    "status",
                )
            }
        )
        assert not logs_equal(log, truncated)
        perturbed = dataclasses.replace(log, arrival=log.arrival + 1e-9)
        assert not logs_equal(log, perturbed)


class TestOutageStranding:
    """Adversarial coverage: a mid-horizon full outage of dc0.

    Timeline (period_duration 0.5): periods 1..3 healthy, the outage
    blacks out periods 4-5 (absolute time [1.5, 2.5)), period 6 recovers.
    """

    def _run(self):
        K = 8
        scenario = build_small_scenario(
            num_periods=K, num_datacenters=2, num_locations=2, seed=3
        )
        scenario = dataclasses.replace(scenario, demand=np.full((2, K), 40.0))
        coeff = scenario.instance.demand_coefficients
        # Single busy server per pair: utilization ~0.6-0.7, so a solid
        # share of requests is still in flight when the period ends.
        alloc = np.minimum(0.999, 40.0 / coeff)
        states = np.tile(alloc[None], (K - 1, 1, 1))
        outage = OutageEvent(
            datacenter_index=0, start_period=4, duration=2, remaining_fraction=0.0
        )
        log_collector = EventLogCollector()
        config = ReplayConfig(seed=11, period_duration=0.5, warmup_fraction=0.0)
        engine = EventEngine(
            scenario,
            states,
            config=config,
            outages=[outage],
            collectors=(log_collector,),
        )
        result = engine.run(jobs=1)
        return engine, result, log_collector.log(), outage

    def test_conservation_no_lost_no_duplicated(self):
        engine, result, log, _ = self._run()
        process = engine.process
        duration = engine.period_duration
        # Every request the arrival process generates appears in the log
        # exactly once, with exactly one terminal status.
        for period in range(1, engine.scenario.num_periods):
            for v in range(engine.scenario.instance.num_locations):
                expected = process.arrivals(11, period, v, duration).size
                got = int(np.sum((log.period == period) & (log.location == v)))
                assert got == expected, (period, v)
        statuses = [STATUS_SERVED, STATUS_DROPPED, STATUS_STRANDED]
        assert sum(int(np.sum(log.status == s)) for s in statuses) == log.num_requests
        assert result.total_requests == log.num_requests
        assert (
            result.total_served + result.total_dropped + result.total_stranded
            == result.total_requests
        )

    def test_stranded_requests_are_in_flight_at_the_failed_site(self):
        engine, result, log, outage = self._run()
        duration = engine.period_duration
        stranded = log.status == STATUS_STRANDED
        assert result.total_stranded > 0  # the outage actually bites
        # Only the failed data center strands requests...
        assert np.all(log.datacenter[stranded] == outage.datacenter_index)
        # ...and only requests whose completion lands inside the outage.
        onset = (outage.start_period - 1) * duration
        completions = log.arrival[stranded] + log.sojourn[stranded]
        assert np.all(completions >= onset)
        # Stranded requests are accounted for but yield no latency sample.
        assert np.all(np.isnan(log.latency[stranded]))
        assert np.all(np.isfinite(log.sojourn[stranded]))

    def test_no_routing_to_a_dead_datacenter(self):
        _, _, log, outage = self._run()
        blackout = (log.period >= outage.start_period) & (
            log.period < outage.start_period + outage.duration
        )
        assert np.any(blackout)
        assert np.all(log.datacenter[blackout] != outage.datacenter_index)

    def test_served_and_dropped_invariants(self):
        _, _, log, _ = self._run()
        served = log.status == STATUS_SERVED
        dropped = log.status == STATUS_DROPPED
        assert np.all(np.isfinite(log.latency[served]))
        assert np.all(log.datacenter[served] >= 0)
        assert np.all(log.datacenter[dropped] == -1)
        assert np.all(log.server[dropped] == -1)
        assert np.all(np.isnan(log.latency[dropped]))


class TestEngineValidation:
    def test_states_shape_and_sign_checked(self):
        scenario = build_small_scenario(num_periods=3)
        with pytest.raises(ValueError, match="states must be"):
            EventEngine(scenario, np.zeros((9, 9, 9)))
        K = scenario.num_periods
        L = scenario.instance.num_datacenters
        V = scenario.instance.num_locations
        bad = np.full((K - 1, L, V), -1.0)
        with pytest.raises(ValueError, match="finite and nonnegative"):
            EventEngine(scenario, bad)

    def test_zero_capacity_drops_everything(self):
        scenario, _ = _single_queue_setup(rate=10.0)
        states = np.full((scenario.num_periods - 1, 1, 1), 1e-12)  # below dust
        engine = EventEngine(
            scenario, states, config=ReplayConfig(seed=1, period_duration=10.0)
        )
        result = engine.run(jobs=1)
        assert result.total_requests > 0
        assert result.total_dropped == result.total_requests
        assert result.total_served == 0

    def test_replay_config_validation(self):
        with pytest.raises(ValueError, match="total_requests"):
            ReplayConfig(total_requests=0.0)
        with pytest.raises(ValueError, match="period_duration"):
            ReplayConfig(period_duration=-1.0)
        with pytest.raises(ValueError, match="warmup_fraction"):
            ReplayConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError, match="min_allocation"):
            ReplayConfig(min_allocation=0.0)

    def test_trace_duration_conflict_rejected(self):
        scenario, states = _single_queue_setup(rate=10.0, num_periods=3)
        trace = TraceArrivals.from_request_log(
            np.array([0.5, 1.5, 2.5]),
            np.array([0, 0, 0]),
            num_periods=3,
            num_locations=1,
            period_duration=2.0,
        )
        with pytest.raises(ValueError, match="conflicts"):
            EventEngine(
                scenario,
                states,
                config=ReplayConfig(period_duration=7.0),
                process=trace,
            )
        engine = EventEngine(scenario, states, process=trace)
        assert engine.period_duration == 2.0

    def test_zero_rate_duration_unresolvable(self):
        scenario, states = _single_queue_setup(rate=10.0)
        dead = PoissonArrivals(np.zeros_like(scenario.demand))
        with pytest.raises(ValueError, match="zero total rate"):
            EventEngine(scenario, states, process=dead)


class TestCollectors:
    def test_latency_collector_requires_start(self):
        collector = LatencyCollector()
        with pytest.raises(RuntimeError, match="never started"):
            collector.location_stats()

    def test_throughput_rows_sum_to_totals(self):
        throughput = ThroughputCollector()
        _, result, _ = _small_replay(collectors=(throughput,))
        rows = throughput.per_period()
        assert rows.shape == (4, 4)
        assert throughput.periods == (1, 2, 3, 4)
        assert int(rows[:, 0].sum()) == result.total_requests
        np.testing.assert_array_equal(rows[:, 0], rows[:, 1:].sum(axis=1))

    def test_latency_stats_partition_arrivals(self):
        latency = LatencyCollector()
        _, result, _ = _small_replay(collectors=(latency,))
        stats = latency.location_stats()
        np.testing.assert_array_equal(
            stats.arrivals, stats.served + stats.dropped + stats.stranded
        )
        assert int(stats.arrivals.sum()) == result.total_requests
        with_data = stats.measured > 0
        assert np.all(stats.measured <= stats.served)
        assert np.all(stats.violations[with_data] <= stats.measured[with_data])
        assert np.all(
            (stats.violation_rate[with_data] >= 0.0)
            & (stats.violation_rate[with_data] <= 1.0)
        )
        assert np.all(stats.mean_latency[with_data] > 0.0)
