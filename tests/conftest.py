"""Shared fixtures and hypothesis profiles for the test suite.

Two hypothesis profiles are registered and selected via the
``REPRO_HYPOTHESIS_PROFILE`` environment variable (see docs/TESTING.md):

* ``ci`` — deterministic (derandomized, fixed example counts, no
  deadline so shared-runner jitter cannot flake a build);
* ``dev`` (default) — fewer examples for a fast local edit loop, still
  no deadline because solver-backed properties have heavy-tailed runtimes.

Per-test ``@settings(...)`` decorators override the profile where a
property needs more or fewer examples.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.instance import DSPPInstance

settings.register_profile(
    "ci",
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "dev",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic randomness for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_instance() -> DSPPInstance:
    """A 2-DC x 2-location instance, everything feasible and finite."""
    return DSPPInstance(
        datacenters=("dc0", "dc1"),
        locations=("v0", "v1"),
        sla_coefficients=np.array([[0.02, 0.05], [0.05, 0.02]]),
        reconfiguration_weights=np.array([1.0, 1.0]),
        capacities=np.array([100.0, 100.0]),
        initial_state=np.zeros((2, 2)),
    )


@pytest.fixture
def small_demand() -> np.ndarray:
    """Demand matrix (V=2, T=5) matching ``small_instance``."""
    return np.tile(np.array([[120.0], [150.0]]), (1, 5))


@pytest.fixture
def small_prices() -> np.ndarray:
    """Price matrix (L=2, T=5) matching ``small_instance``."""
    return np.tile(np.array([[1.0], [1.5]]), (1, 5))
