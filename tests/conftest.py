"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import DSPPInstance


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic randomness for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_instance() -> DSPPInstance:
    """A 2-DC x 2-location instance, everything feasible and finite."""
    return DSPPInstance(
        datacenters=("dc0", "dc1"),
        locations=("v0", "v1"),
        sla_coefficients=np.array([[0.02, 0.05], [0.05, 0.02]]),
        reconfiguration_weights=np.array([1.0, 1.0]),
        capacities=np.array([100.0, 100.0]),
        initial_state=np.zeros((2, 2)),
    )


@pytest.fixture
def small_demand() -> np.ndarray:
    """Demand matrix (V=2, T=5) matching ``small_instance``."""
    return np.tile(np.array([[120.0], [150.0]]), (1, 5))


@pytest.fixture
def small_prices() -> np.ndarray:
    """Price matrix (L=2, T=5) matching ``small_instance``."""
    return np.tile(np.array([[1.0], [1.5]]), (1, 5))
