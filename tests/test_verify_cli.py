"""Tests for the verify CLI, the fuzz runner and the regression corpus."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.verify.corpus import CorpusEntry, entry_filename, load_corpus, record_entry
from repro.verify.runner import (
    CHECKS,
    CheckSpec,
    FuzzConfig,
    replay_corpus,
    run_fuzz,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_CORPUS = REPO_ROOT / "tests" / "corpus"


class TestCorpusRoundTrip:
    def test_record_then_load(self, tmp_path):
        entry = CorpusEntry(
            check="qp_reference", tier="tiny", seed=[1, 2], note="n", created="2026-08-06"
        )
        path = record_entry(entry, tmp_path)
        assert path.name == entry_filename(entry)
        assert load_corpus(tmp_path) == [entry]

    def test_record_is_idempotent(self, tmp_path):
        entry = CorpusEntry(check="qp_reference", tier="tiny", seed=[5])
        record_entry(entry, tmp_path)
        record_entry(entry, tmp_path)
        assert len(load_corpus(tmp_path)) == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_unknown_keys_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text(
            '{"check": "a", "tier": "tiny", "seed": [1], "extra": 1}'
        )
        with pytest.raises(ValueError, match="unexpected keys"):
            load_corpus(tmp_path)

    def test_missing_keys_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"check": "a"}')
        with pytest.raises(ValueError, match="missing keys"):
            load_corpus(tmp_path)

    def test_non_integer_seed_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text(
            '{"check": "a", "tier": "tiny", "seed": ["x"]}'
        )
        with pytest.raises(ValueError, match="list of ints"):
            load_corpus(tmp_path)

    def test_invalid_json_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text("{")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_corpus(tmp_path)


class TestRunner:
    def test_fuzz_budget_and_determinism(self):
        config = FuzzConfig(budget=6, seed=123, checks=("qp_reference",))
        a = run_fuzz(config)
        b = run_fuzz(config)
        assert a.num_trials == 6
        assert a.trials == b.trials
        assert a.ok

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(budget=0)
        with pytest.raises(ValueError):
            FuzzConfig(tiers=("galactic",))
        with pytest.raises(ValueError):
            FuzzConfig(checks=("no_such_check",))

    def test_failing_check_is_shrunk_and_recorded(self, tmp_path, monkeypatch):
        # Inject a check that fails at every tier: the runner must shrink
        # the failure to the smallest tier and record it to the corpus.
        def always_fails(rng, tier):
            raise AssertionError("synthetic failure")

        monkeypatch.setitem(
            CHECKS, "synthetic_failure", CheckSpec("synthetic_failure", always_fails)
        )
        config = FuzzConfig(
            budget=3, seed=0, checks=("synthetic_failure",), corpus_dir=tmp_path
        )
        report = run_fuzz(config)
        assert not report.ok
        # Trials 1 and 2 drew the small and medium tiers; both shrink back.
        assert [t.tier for t in report.trials] == ["tiny", "tiny", "tiny"]
        entries = load_corpus(tmp_path)
        assert len(entries) == 3
        assert {e.check for e in entries} == {"synthetic_failure"}
        assert {e.tier for e in entries} == {"tiny"}
        # The recorded entry replays to the same failure.
        replay = replay_corpus(tmp_path)
        assert not replay.ok

    def test_replay_fails_on_unknown_check(self, tmp_path):
        record_entry(CorpusEntry(check="renamed_away", tier="tiny", seed=[1]), tmp_path)
        report = replay_corpus(tmp_path)
        assert not report.ok
        assert "unknown check" in report.trials[0].error


class TestCLI:
    def test_list_prints_registry(self, capsys):
        assert main(["verify", "list"]) == 0
        out = capsys.readouterr().out
        for name in CHECKS:
            assert name in out

    def test_fuzz_small_budget_green(self, capsys):
        code = main(
            ["verify", "fuzz", "--budget", "4", "--seed", "0", "--check", "qp_reference"]
        )
        assert code == 0
        assert "4 trials, 0 failing" in capsys.readouterr().out

    def test_replay_committed_corpus_green(self, capsys):
        # The same gate CI runs: every committed regression seed must pass.
        assert main(["verify", "replay", "--corpus", str(COMMITTED_CORPUS)]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_replay_empty_corpus_is_ok(self, tmp_path, capsys):
        assert main(["verify", "replay", "--corpus", str(tmp_path)]) == 0
        assert "nothing to replay" in capsys.readouterr().out

    def test_fuzz_exits_nonzero_on_failure(self, monkeypatch, capsys):
        def always_fails(rng, tier):
            raise AssertionError("synthetic failure")

        monkeypatch.setitem(
            CHECKS, "synthetic_failure", CheckSpec("synthetic_failure", always_fails)
        )
        code = main(
            ["verify", "fuzz", "--budget", "1", "--check", "synthetic_failure"]
        )
        assert code == 1

    def test_rejects_unknown_check_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "fuzz", "--check", "definitely_not_a_check"])
