"""Tests for the workload characterization module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.characterization import (
    WorkloadProfile,
    characterize,
    seasonal_strength,
)
from repro.workload.demand import build_demand_matrix
from repro.workload.diurnal import OnOffEnvelope


def _diurnal_demand(num_days=4, noise_cv=0.1, seed=0):
    """Two locations with known diurnal shape plus lognormal noise."""
    rng = np.random.default_rng(seed)
    hours = np.arange(24 * num_days)
    base = np.vstack(
        [
            50.0 + 30.0 * np.sin(2 * np.pi * hours / 24.0),
            20.0 + 10.0 * np.cos(2 * np.pi * hours / 24.0),
        ]
    )
    sigma = np.sqrt(np.log1p(noise_cv**2))
    noise = rng.lognormal(-0.5 * sigma**2, sigma, size=base.shape)
    return base, base * noise


class TestCharacterize:
    def test_recovers_seasonal_means(self):
        base, observed = _diurnal_demand(num_days=40)
        profile = characterize(observed, season_length=24)
        expected = profile.expected_rates(24)
        assert expected == pytest.approx(base[:, :24], rel=0.1)

    def test_recovers_residual_cv(self):
        _, observed = _diurnal_demand(num_days=60, noise_cv=0.25)
        profile = characterize(observed, season_length=24)
        assert profile.residual_cv == pytest.approx([0.25, 0.25], rel=0.2)

    def test_noise_free_has_zero_cv_and_exact_means(self):
        base, _ = _diurnal_demand(num_days=3, noise_cv=0.0)
        profile = characterize(base, season_length=24)
        assert profile.residual_cv == pytest.approx([0.0, 0.0], abs=1e-9)
        assert profile.expected_rates(24) == pytest.approx(base[:, :24])

    def test_needs_a_full_season(self):
        with pytest.raises(ValueError, match="full season"):
            characterize(np.ones((1, 10)), season_length=24)

    def test_validation(self):
        with pytest.raises(ValueError):
            characterize(-np.ones((1, 24)), season_length=24)
        with pytest.raises(ValueError):
            characterize(np.ones(24), season_length=24)


class TestGenerate:
    def test_generated_statistics_match_profile(self, rng):
        base, observed = _diurnal_demand(num_days=30, noise_cv=0.2)
        profile = characterize(observed, season_length=24)
        synthetic = profile.generate(24 * 60, rng)
        refit = characterize(synthetic, season_length=24)
        assert refit.seasonal_means == pytest.approx(
            profile.seasonal_means, rel=0.12
        )
        assert refit.residual_cv == pytest.approx(profile.residual_cv, rel=0.3)

    def test_generation_is_nonnegative(self, rng):
        _, observed = _diurnal_demand(num_days=5, noise_cv=0.5)
        profile = characterize(observed, season_length=24)
        synthetic = profile.generate(500, rng)
        assert np.all(synthetic >= 0)

    def test_phase_offset(self):
        base, _ = _diurnal_demand(num_days=2, noise_cv=0.0)
        profile = characterize(base, season_length=24)
        shifted = profile.expected_rates(24, start_phase=6)
        assert shifted[:, 0] == pytest.approx(profile.seasonal_means[:, 6])

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                locations=("a",),
                seasonal_means=np.ones((2, 24)),
                residual_cv=np.zeros(1),
                season_length=24,
            )


class TestSeasonalStrength:
    def test_pure_seasonal_is_one(self):
        base, _ = _diurnal_demand(num_days=4, noise_cv=0.0)
        assert seasonal_strength(base) == pytest.approx(1.0, abs=1e-9)

    def test_noise_reduces_strength(self):
        _, noisy = _diurnal_demand(num_days=20, noise_cv=0.6, seed=1)
        _, clean = _diurnal_demand(num_days=20, noise_cv=0.05, seed=1)
        assert seasonal_strength(noisy) < seasonal_strength(clean)

    def test_white_noise_is_weak(self):
        rng = np.random.default_rng(4)
        noise = rng.uniform(10.0, 20.0, size=(2, 24 * 20))
        assert seasonal_strength(noise) < 0.3

    def test_paper_workload_is_strongly_seasonal(self):
        matrix = build_demand_matrix(
            800.0, 24 * 7, envelope=OnOffEnvelope(), rng=np.random.default_rng(0)
        )
        assert seasonal_strength(matrix.rates) > 0.7
