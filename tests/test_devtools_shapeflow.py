"""Tests for shapeflow (:mod:`repro.devtools.shapeflow`).

Covers the fixture corpus (every diagnostic has a failing snippet and a
clean/suppressed counterpart), the symbolic shape propagation itself, the
cross-module registry, and the CLI contract — including the gating fact
that the repo's own ``src`` tree analyzes clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.devtools.shapeflow import (
    SHAPEFLOW_RULES,
    analyze_paths,
    analyze_source,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures" / "static"
SOLVER_PATH = "src/repro/solvers/fixture.py"


def codes_of(source: str, path: str = SOLVER_PATH) -> set[str]:
    """Analyze a dedented snippet and return the set of diagnostic codes."""
    return {d.code for d in analyze_source(textwrap.dedent(source), path)}


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "fixture",
        sorted(p.name for p in FIXTURES.glob("sf*.py")),
    )
    def test_fixture_produces_exactly_its_named_diagnostic(self, fixture: str) -> None:
        source = (FIXTURES / fixture).read_text()
        codes = {d.code for d in analyze_source(source, SOLVER_PATH)}
        if fixture.endswith("_ok.py"):
            assert codes == set()
        else:
            expected = fixture.split("_")[0].upper()
            assert expected in codes

    def test_every_diagnostic_has_a_true_positive_fixture(self) -> None:
        covered = {p.name.split("_")[0].upper() for p in FIXTURES.glob("sf*.py")}
        assert covered >= set(SHAPEFLOW_RULES)


class TestSpecErrors:
    def test_duplicate_spec(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("v:(n,)", "v:(m,)")
        def f(v: np.ndarray) -> float:
            return float(v.sum())
        """
        assert "SF001" in codes_of(src)

    def test_valid_contract_is_silent(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("v:(n,)", "w:(n,)", ret="(n,)")
        def f(v: np.ndarray, w: np.ndarray) -> np.ndarray:
            return v + w
        """
        assert codes_of(src) == set()


class TestPropagation:
    def test_constructor_transpose_and_matmul(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("g:(4, 7)")
        def consume(g: np.ndarray) -> float:
            return float(g.sum())

        def produce() -> float:
            a = np.zeros((7, 2))
            b = np.ones((2, 4))
            c = (a @ b).T          # (4, 7)
            return consume(c)
        """
        assert codes_of(src) == set()

    def test_transpose_flips_a_literal_mismatch_into_a_finding(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("g:(4, 7)")
        def consume(g: np.ndarray) -> float:
            return float(g.sum())

        def produce() -> float:
            c = np.zeros((4, 7)).T   # (7, 4): transposed the wrong way
            return consume(c)
        """
        assert "SF002" in codes_of(src)

    def test_slicing_preserves_and_drops_axes(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("row:(5,)")
        def consume(row: np.ndarray) -> float:
            return float(row.sum())

        def produce() -> float:
            grid = np.zeros((3, 5))
            return consume(grid[0, :])
        """
        assert codes_of(src) == set()

    def test_branches_keep_only_agreeing_bindings(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("v:(3,)")
        def consume(v: np.ndarray) -> float:
            return float(v.sum())

        def produce(flag: bool) -> float:
            if flag:
                v = np.zeros(4)
            else:
                v = np.zeros(5)
            # v's shape is branch-dependent: no provable violation.
            return consume(v)
        """
        assert codes_of(src) == set()

    def test_tuple_return_contract_distributes_through_unpacking(self) -> None:
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("v:(n,)", ret=("(n,)", "(2,)"))
        def split(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return v, np.zeros(2)

        @check_shapes("pair:(3,)")
        def consume(pair: np.ndarray) -> float:
            return float(pair.sum())

        def produce() -> float:
            main_part, extras = split(np.ones(9))
            return consume(extras)   # (2,) into a (3,) contract
        """
        assert "SF002" in codes_of(src)

    def test_symbolic_dims_never_conflict_with_ints(self) -> None:
        # Soundness policy: an int vs an unknown local symbol is not provable.
        src = """
        import numpy as np
        from repro.contracts import check_shapes

        @check_shapes("v:(3,)")
        def consume(v: np.ndarray) -> float:
            return float(v.sum())

        def produce(n: int) -> float:
            v = np.zeros(n)
            return consume(v)
        """
        assert codes_of(src) == set()


class TestMissingContracts:
    def test_only_fires_under_solver_packages(self) -> None:
        src = """
        import numpy as np

        __all__ = ["helper"]

        def helper(v: np.ndarray) -> np.ndarray:
            return v * 2.0
        """
        assert "SF004" in codes_of(src, "src/repro/solvers/mod.py")
        assert codes_of(src, "src/repro/experiments/mod.py") == set()

    def test_private_functions_are_exempt(self) -> None:
        src = """
        import numpy as np

        def _internal(v: np.ndarray) -> np.ndarray:
            return v * 2.0
        """
        assert codes_of(src) == set()

    def test_scalar_functions_are_exempt(self) -> None:
        src = """
        def pure_scalar(a: float, b: float) -> float:
            return a + b
        """
        assert codes_of(src) == set()


class TestSuppressions:
    def test_file_wide_suppression(self) -> None:
        src = """
        # shapeflow: disable-file=SF004
        import numpy as np

        def helper(v: np.ndarray) -> np.ndarray:
            return v * 2.0
        """
        assert codes_of(src) == set()

    def test_line_suppression_is_per_code(self) -> None:
        src = """
        import numpy as np

        def bad() -> np.ndarray:  # shapeflow: disable=SF004
            left = np.zeros((2, 3))
            right = np.zeros((4, 5))
            return left @ right
        """
        # SF005 sits on a different line and must survive.
        assert codes_of(src) == {"SF005"}


class TestCrossModuleRegistry:
    def test_call_sites_resolve_across_files(self, tmp_path: Path) -> None:
        lib = tmp_path / "lib.py"
        lib.write_text(
            textwrap.dedent(
                """
                import numpy as np
                from repro.contracts import check_shapes

                @check_shapes("v:(3,)")
                def contracted(v: np.ndarray) -> float:
                    return float(v.sum())
                """
            )
        )
        app = tmp_path / "app.py"
        app.write_text(
            textwrap.dedent(
                """
                import numpy as np
                from lib import contracted

                def caller() -> float:
                    return contracted(np.zeros(7))
                """
            )
        )
        diagnostics = analyze_paths([tmp_path])
        assert any(d.code == "SF002" and d.path.endswith("app.py") for d in diagnostics)


class TestCLI:
    def test_repo_src_tree_is_clean(self) -> None:
        assert main(["src"]) == 0

    def test_exit_one_on_findings(self, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "solvers" / "mod.py"
        bad.parent.mkdir()
        bad.write_text(
            "import numpy as np\n"
            "def f() -> np.ndarray:\n"
            "    return np.zeros((2, 3)) @ np.zeros((4, 5))\n"
        )
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SF005" in out

    def test_usage_errors(self, tmp_path: Path) -> None:
        assert main([str(tmp_path / "missing.py")]) == 2
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2

    def test_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in SHAPEFLOW_RULES:
            assert code in out
