"""Tests for the multi-provider game (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.game.best_response import (
    BestResponseConfig,
    compute_equilibrium,
)
from repro.game.efficiency import efficiency_ratio, verify_theorem1
from repro.game.equilibrium import verify_equilibrium
from repro.game.players import ServiceProvider, random_providers
from repro.game.swp import SWPInfeasibleError, solve_swp


def _population(n=3, horizon=4, seed=0, demand_scale=40.0):
    rng = np.random.default_rng(seed)
    latency = rng.uniform(10.0, 60.0, size=(3, 4))
    return random_providers(
        n,
        ("dc0", "dc1", "dc2"),
        ("v0", "v1", "v2", "v3"),
        latency,
        horizon,
        rng,
        demand_scale=demand_scale,
    )


class TestRandomProviders:
    def test_population_structure(self):
        providers = _population(4)
        assert len(providers) == 4
        sizes = {p.instance.server_size for p in providers}
        assert sizes <= {1.0, 2.0, 4.0}
        for p in providers:
            assert p.horizon == 4
            assert p.demand.shape == (4, 4)
            assert p.prices.shape == (3, 4)

    def test_every_location_servable(self):
        for p in _population(5, seed=3):
            assert np.isfinite(p.instance.sla_coefficients).any(axis=0).all()

    def test_servers_demanded_positive(self):
        p = _population(1)[0]
        assert np.all(p.servers_demanded() > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _population(0)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="latency"):
            random_providers(1, ("a",), ("v",), np.ones((2, 2)), 3, rng)


class TestServiceProviderValidation:
    def test_shape_checks(self):
        p = _population(1)[0]
        with pytest.raises(ValueError, match="demand"):
            ServiceProvider("bad", p.instance, np.ones((2, 4)), p.prices)
        with pytest.raises(ValueError, match="prices"):
            ServiceProvider("bad", p.instance, p.demand, np.ones((3, 9)))
        with pytest.raises(ValueError, match="nonnegative"):
            ServiceProvider("bad", p.instance, -p.demand, p.prices)


class TestBestResponse:
    def test_loose_capacity_converges_immediately(self):
        providers = _population(3)
        result = compute_equilibrium(providers, np.full(3, 1e5))
        assert result.converged
        assert result.total_shortfall == pytest.approx(0.0, abs=1e-6)

    def test_quota_rows_sum_to_capacity(self):
        providers = _population(3)
        capacity = np.array([50.0, 500.0, 500.0])
        result = compute_equilibrium(
            providers, capacity, BestResponseConfig(epsilon=1e-3)
        )
        assert result.quotas.sum(axis=0) == pytest.approx(capacity)

    def test_cost_history_recorded(self):
        providers = _population(2)
        result = compute_equilibrium(providers, np.full(3, 1e5))
        assert len(result.cost_history) == result.iterations
        assert result.cost_history[-1] == pytest.approx(result.total_cost)

    def test_tight_capacity_takes_longer(self):
        providers = _population(4, demand_scale=120.0, seed=2)
        loose = compute_equilibrium(
            providers, np.array([2000.0, 2000.0, 2000.0]), BestResponseConfig(epsilon=1e-4)
        )
        tight = compute_equilibrium(
            providers, np.array([30.0, 2000.0, 2000.0]), BestResponseConfig(epsilon=1e-4)
        )
        assert tight.iterations >= loose.iterations

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            compute_equilibrium([], np.ones(3))
        a = _population(1, horizon=3)
        b = _population(1, horizon=4)
        with pytest.raises(ValueError, match="horizon"):
            compute_equilibrium([a[0], b[0]], np.ones(3))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BestResponseConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            BestResponseConfig(max_iterations=0)
        with pytest.raises(ValueError):
            BestResponseConfig(slack_penalty=-1.0)


class TestSWP:
    def test_swp_feasible_solves(self):
        providers = _population(2)
        solution = solve_swp(providers, np.full(3, 1e5))
        assert solution.total_cost > 0
        assert solution.total_shortfall == pytest.approx(0.0, abs=1e-6)
        assert len(solution.trajectories) == 2

    def test_swp_respects_joint_capacity(self):
        providers = _population(3, demand_scale=80.0)
        capacity = np.array([40.0, 400.0, 400.0])
        solution = solve_swp(providers, capacity, slack_penalty=1e3)
        T = providers[0].horizon
        for t in range(T):
            used = np.zeros(3)
            for p, traj in zip(providers, solution.trajectories):
                used += p.instance.server_size * traj.states[t].sum(axis=1)
            assert np.all(used <= capacity + 1e-4)

    def test_swp_hard_infeasible_raises(self):
        providers = _population(3, demand_scale=500.0)
        with pytest.raises(SWPInfeasibleError):
            solve_swp(providers, np.array([1.0, 1.0, 1.0]))

    def test_swp_cheaper_than_any_suboptimal_split(self):
        # SWP with generous capacity equals the sum of independent optima.
        providers = _population(2)
        joint = solve_swp(providers, np.full(3, 1e5))
        from repro.core.dspp import solve_dspp

        independent = sum(
            solve_dspp(p.instance, p.demand, p.prices).objective for p in providers
        )
        assert joint.total_cost == pytest.approx(independent, rel=1e-3)


class TestEquilibriumVerification:
    def test_best_response_outcome_is_equilibrium(self):
        providers = _population(3, demand_scale=60.0, seed=5)
        capacity = np.array([60.0, 800.0, 800.0])
        config = BestResponseConfig(epsilon=1e-4)
        result = compute_equilibrium(providers, capacity, config)
        report = verify_equilibrium(
            providers,
            result.solutions,
            capacity,
            slack_penalty=config.slack_penalty,
            tolerance=0.05,
        )
        assert report.is_equilibrium, report.improvements

    def test_misallocated_quotas_are_not_equilibrium(self):
        # Give almost everything to provider 0 — provider 1 must profit by
        # deviating into the idle capacity.
        providers = _population(2, demand_scale=80.0, seed=6)
        capacity = np.array([100.0, 100.0, 100.0])
        from repro.core.dspp import solve_dspp

        starved_quota = capacity * 0.02
        rich_quota = capacity * 0.98
        solutions = [
            solve_dspp(
                providers[0].instance.with_capacities(rich_quota),
                providers[0].demand,
                providers[0].prices,
                demand_slack_penalty=1e3,
            ),
            solve_dspp(
                providers[1].instance.with_capacities(starved_quota),
                providers[1].demand,
                providers[1].prices,
                demand_slack_penalty=1e3,
            ),
        ]
        report = verify_equilibrium(
            providers, solutions, capacity, slack_penalty=1e3, tolerance=0.05
        )
        assert report.improvements[1] > 0.05


class TestEfficiency:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            efficiency_ratio(1.0, 0.0)
        assert efficiency_ratio(12.0, 10.0) == pytest.approx(1.2)

    def test_theorem1_pos_is_one(self):
        providers = _population(3, demand_scale=60.0, seed=8)
        capacity = np.array([80.0, 800.0, 800.0])
        report = verify_theorem1(
            providers, capacity, BestResponseConfig(epsilon=1e-4), tolerance=0.1
        )
        assert report.holds, report.price_of_stability
        assert report.price_of_stability == pytest.approx(1.0, abs=0.1)
