"""Tests for the post-run analysis module and the predicting game loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    analyze_run,
    cost_by_datacenter,
    movement_by_datacenter,
    utilization,
)
from repro.control.loop import run_closed_loop
from repro.control.mpc import MPCConfig, MPCController
from repro.game.mpc_game import MPCGameConfig, run_mpc_game
from repro.game.players import random_providers
from repro.prediction.naive import LastValuePredictor
from repro.prediction.oracle import OraclePredictor
from repro.simulation.scenario import build_small_scenario


class TestCostByDatacenter:
    def test_matches_manual_sum(self):
        states = np.array([[[1.0, 1.0], [2.0, 0.0]]])  # T=1, L=2, V=2
        controls = np.array([[[1.0, 1.0], [2.0, 0.0]]])
        prices = np.array([[3.0], [5.0]])
        weights = np.array([1.0, 2.0])
        costs = cost_by_datacenter(states, controls, prices, weights)
        assert costs["allocation"] == pytest.approx([6.0, 10.0])
        assert costs["reconfiguration"] == pytest.approx([2.0, 8.0])
        assert costs["total"] == pytest.approx([8.0, 18.0])

    def test_sums_to_objective(self):
        scenario = build_small_scenario(num_periods=8, seed=5)
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=3),
        )
        result = run_closed_loop(controller, scenario.demand, scenario.prices)
        costs = cost_by_datacenter(
            result.trajectory.states,
            result.trajectory.controls,
            scenario.prices[:, 1:],
            scenario.instance.reconfiguration_weights,
        )
        assert costs["total"].sum() == pytest.approx(result.total_cost, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            cost_by_datacenter(
                np.ones((1, 2, 2)), np.ones((2, 2, 2)), np.ones((2, 1)), np.ones(2)
            )
        with pytest.raises(ValueError):
            cost_by_datacenter(
                np.ones((1, 2, 2)), np.ones((1, 2, 2)), np.ones((3, 1)), np.ones(2)
            )


class TestUtilization:
    def test_exact_sla_minimum_is_one(self):
        coeff = np.array([[10.0]])  # 1/a
        states = np.array([[[4.0]]])  # serves 40
        demand = np.array([[40.0]])
        assert utilization(states, demand, coeff) == pytest.approx([1.0])

    def test_cushion_below_one(self):
        coeff = np.array([[10.0]])
        states = np.array([[[8.0]]])
        demand = np.array([[40.0]])
        assert utilization(states, demand, coeff) == pytest.approx([0.5])

    def test_no_servers_with_demand_is_inf(self):
        out = utilization(np.zeros((1, 1, 1)), np.array([[5.0]]), np.ones((1, 1)))
        assert np.isinf(out[0])

    def test_idle_empty_period_is_zero(self):
        out = utilization(np.zeros((1, 1, 1)), np.zeros((1, 1)), np.ones((1, 1)))
        assert out[0] == 0.0


class TestMovement:
    def test_add_remove_accounting(self):
        controls = np.array(
            [[[2.0], [0.0]], [[-1.0], [3.0]]]
        )  # T=2, L=2, V=1
        movement = movement_by_datacenter(controls)
        assert movement["added"] == pytest.approx([2.0, 3.0])
        assert movement["removed"] == pytest.approx([1.0, 0.0])
        assert movement["net"] == pytest.approx([1.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            movement_by_datacenter(np.ones((2, 2)))


class TestAnalyzeRun:
    def test_full_bundle(self):
        scenario = build_small_scenario(num_periods=8, seed=6)
        controller = MPCController(
            scenario.instance,
            OraclePredictor(scenario.demand),
            OraclePredictor(scenario.prices),
            MPCConfig(window=3),
        )
        result = run_closed_loop(controller, scenario.demand, scenario.prices)
        analysis = analyze_run(result, scenario.instance)
        assert analysis.cost_per_datacenter.sum() == pytest.approx(
            result.total_cost, rel=1e-9
        )
        assert 0.0 < analysis.mean_utilization <= analysis.peak_utilization
        # Oracle + exact SLA sizing: never under-provisioned.
        assert analysis.peak_utilization <= 1.0 + 1e-6
        assert analysis.servers_added > 0
        assert 0 <= analysis.busiest_datacenter < scenario.instance.num_datacenters


class TestPredictingGameLoop:
    def test_predictor_factory_used(self):
        rng = np.random.default_rng(3)
        latency = rng.uniform(10.0, 60.0, size=(3, 4))
        providers = random_providers(
            2, ("d0", "d1", "d2"), ("v0", "v1", "v2", "v3"),
            latency, 8, rng, demand_scale=50.0,
        )
        built = []

        def factory(index, provider):
            pair = (
                LastValuePredictor(provider.instance.num_locations),
                LastValuePredictor(provider.instance.num_datacenters),
            )
            built.append(index)
            return pair

        result = run_mpc_game(
            providers,
            np.full(3, 1e5),
            MPCGameConfig(window=2, predictor_factory=factory),
        )
        assert built == [0, 1]
        assert result.total_cost > 0

    def test_prediction_error_costs_vs_oracle(self):
        rng = np.random.default_rng(4)
        latency = rng.uniform(10.0, 60.0, size=(3, 4))
        providers = random_providers(
            2, ("d0", "d1", "d2"), ("v0", "v1", "v2", "v3"),
            latency, 10, np.random.default_rng(5), demand_scale=60.0,
        )
        capacity = np.full(3, 1e5)
        oracle = run_mpc_game(providers, capacity, MPCGameConfig(window=3))

        def factory(index, provider):
            return (
                LastValuePredictor(provider.instance.num_locations),
                LastValuePredictor(provider.instance.num_datacenters),
            )

        predicted = run_mpc_game(
            providers,
            capacity,
            MPCGameConfig(window=3, predictor_factory=factory),
        )
        penalty = 1e3
        oracle_total = oracle.total_cost + penalty * oracle.total_shortfall
        predicted_total = predicted.total_cost + penalty * predicted.total_shortfall
        assert predicted_total >= oracle_total - 1e-6
