"""Edge-case tests for the QP solver: iteration caps, LP degeneracy,
adaptive rho, and termination bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.qp import QPSettings, QPStatus, solve_qp


def _hard_qp(seed=0, n=12, m=20):
    """A correlated, ill-conditioned QP that needs real iterations."""
    rng = np.random.default_rng(seed)
    M = rng.normal(size=(n, n)) * 10.0 ** rng.uniform(-2, 2, size=n)
    P = M @ M.T + 1e-4 * np.eye(n)
    q = rng.normal(size=n) * 10.0
    A = rng.normal(size=(m, n))
    x0 = rng.normal(size=n)
    l = A @ x0 - rng.uniform(0.01, 0.5, m)
    u = A @ x0 + rng.uniform(0.01, 0.5, m)
    return P, q, A, l, u


class TestIterationCap:
    def test_max_iterations_status(self):
        P, q, A, l, u = _hard_qp()
        result = solve_qp(
            P, q, A, l, u, settings=QPSettings(max_iterations=20, polish=False)
        )
        assert result.status is QPStatus.MAX_ITERATIONS
        # Residuals are reported, not inf (it is a usable approximate point).
        assert np.isfinite(result.primal_residual)
        assert np.isfinite(result.dual_residual)

    def test_more_iterations_reach_optimal(self):
        P, q, A, l, u = _hard_qp()
        result = solve_qp(P, q, A, l, u, settings=QPSettings(max_iterations=20000))
        assert result.is_optimal


class TestLPDegeneracy:
    def test_pure_lp_with_zero_p(self):
        # min c'x over a box is an LP; the ADMM path must still solve it.
        n = 5
        P = np.zeros((n, n))
        q = np.arange(1.0, n + 1.0)
        A = np.eye(n)
        result = solve_qp(P, q, A, np.full(n, -2.0), np.full(n, 3.0))
        assert result.is_optimal
        assert result.x == pytest.approx(np.full(n, -2.0), abs=1e-5)

    def test_lp_with_coupling_row(self):
        # min x0 + 2 x1 s.t. x0 + x1 >= 1, x >= 0 -> (1, 0).
        P = np.zeros((2, 2))
        q = np.array([1.0, 2.0])
        A = np.vstack([np.ones((1, 2)), np.eye(2)])
        l = np.array([1.0, 0.0, 0.0])
        u = np.full(3, np.inf)
        result = solve_qp(P, q, A, l, u)
        assert result.is_optimal
        assert result.x == pytest.approx([1.0, 0.0], abs=1e-5)


class TestAdaptiveRho:
    def test_disabled_adaptation_still_converges(self):
        P, q, A, l, u = _hard_qp(seed=3)
        result = solve_qp(
            P, q, A, l, u, settings=QPSettings(adaptive_rho_interval=0)
        )
        assert result.is_optimal

    def test_aggressive_adaptation_converges(self):
        P, q, A, l, u = _hard_qp(seed=4)
        result = solve_qp(
            P,
            q,
            A,
            l,
            u,
            settings=QPSettings(
                adaptive_rho_interval=10, adaptive_rho_tolerance=1.5
            ),
        )
        assert result.is_optimal


class TestCheckInterval:
    def test_large_check_interval_converges(self):
        P, q, A, l, u = _hard_qp(seed=5)
        coarse = solve_qp(P, q, A, l, u, settings=QPSettings(check_interval=100))
        fine = solve_qp(P, q, A, l, u, settings=QPSettings(check_interval=10))
        assert coarse.is_optimal and fine.is_optimal
        assert coarse.objective == pytest.approx(fine.objective, rel=1e-5)


class TestDualAccuracy:
    def test_duals_price_the_constraint(self):
        # min x^2 s.t. x >= b: optimal value b^2, dual dV/db = -y = 2b.
        for b in (0.5, 1.0, 2.0):
            result = solve_qp(
                2.0 * np.eye(1), np.zeros(1), np.eye(1), [b], [np.inf]
            )
            assert result.is_optimal
            assert -result.y[0] == pytest.approx(2.0 * b, rel=1e-4)

    def test_equality_dual_matches_lagrangian(self):
        # min 1/2||x||^2 s.t. 1'x = b: x = b/n, y solves x + y*1 = 0.
        n, b = 4, 2.0
        result = solve_qp(
            np.eye(n), np.zeros(n), np.ones((1, n)), [b], [b]
        )
        assert result.is_optimal
        assert result.x == pytest.approx(np.full(n, b / n), abs=1e-5)
        assert result.y[0] == pytest.approx(-b / n, abs=1e-4)


class TestSolutionObject:
    def test_is_optimal_flag(self):
        result = solve_qp(np.eye(1), np.zeros(1), np.eye(1), [0.0], [1.0])
        assert result.is_optimal
        assert result.status is QPStatus.OPTIMAL

    def test_redundant_constraints_tolerated(self):
        # The same row twice (degenerate duals) must not break anything.
        A = np.vstack([np.ones((1, 2)), np.ones((1, 2)), np.eye(2)])
        l = np.array([1.0, 1.0, 0.0, 0.0])
        u = np.full(4, np.inf)
        result = solve_qp(np.eye(2), np.zeros(2), A, l, u)
        assert result.is_optimal
        assert result.x.sum() == pytest.approx(1.0, abs=1e-5)

    def test_fixed_variable_via_equality_box(self):
        result = solve_qp(
            np.eye(2), np.array([5.0, -1.0]), np.eye(2), [2.0, -np.inf], [2.0, np.inf]
        )
        assert result.is_optimal
        assert result.x[0] == pytest.approx(2.0, abs=1e-6)
        assert result.x[1] == pytest.approx(1.0, abs=1e-5)
