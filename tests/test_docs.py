"""Documentation stays executable: run the tutorial's code blocks and
check the README's claims against the codebase."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestTutorial:
    def test_all_python_blocks_execute(self):
        text = (REPO_ROOT / "docs" / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert len(blocks) >= 5
        code = "\n".join(blocks)
        exec(compile(code, "TUTORIAL.md", "exec"), {})


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self) -> str:
        return (REPO_ROOT / "README.md").read_text()

    def test_quickstart_block_executes(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README needs at least one python block"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "README.md", "exec"), namespace)

    def test_referenced_examples_exist(self, readme):
        for match in re.findall(r"`examples/(\w+\.py)`", readme):
            assert (REPO_ROOT / "examples" / match).exists(), match

    def test_referenced_documents_exist(self, readme):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in readme
            assert (REPO_ROOT / name).exists()


class TestDesignDoc:
    def test_listed_modules_exist(self):
        """Every `something.py` named in DESIGN.md's module map exists."""
        text = (REPO_ROOT / "DESIGN.md").read_text()
        block = re.search(r"```\nsrc/repro/\n(.*?)```", text, re.S)
        assert block is not None
        current_package = None
        for line in block.group(1).splitlines():
            package = re.match(r"  (\w+)/\s*$", line)
            if package:
                current_package = package.group(1)
                continue
            module = re.match(r"    (\w+\.py)", line)
            if module and current_package:
                path = REPO_ROOT / "src" / "repro" / current_package / module.group(1)
                assert path.exists(), f"DESIGN.md names missing module {path}"


class TestApiDoc:
    def test_listed_top_level_names_exist(self):
        """Every backticked name in API.md's top-level table resolves."""
        import repro

        text = (REPO_ROOT / "docs" / "API.md").read_text()
        section = text.split("## Top level")[1].split("## ")[0]
        for match in re.findall(r"\| `(\w+)", section):
            assert hasattr(repro, match), f"API.md lists missing repro.{match}"

    def test_listed_packages_importable(self):
        import importlib

        text = (REPO_ROOT / "docs" / "API.md").read_text()
        for package in re.findall(r"## `(repro[\w.]*)`", text):
            importlib.import_module(package)
