"""Tests for the extension modules: static LP, integer rounding, L1
penalty, and the optimal-assignment router ablation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.absolute import L1DSPPInfeasibleError, solve_dspp_l1
from repro.core.dspp import solve_dspp
from repro.core.instance import DSPPInstance
from repro.core.integer import (
    IntegerRepairError,
    round_repair,
    round_up,
    solve_dspp_integer,
)
from repro.core.static import (
    StaticPlacementInfeasibleError,
    solve_static_placement,
)
from repro.routing.optimal import (
    AssignmentInfeasibleError,
    optimal_assignment,
)
from repro.routing.proportional import proportional_assignment


@pytest.fixture
def asym_instance():
    """Two DCs with asymmetric SLA coefficients and prices-agnostic data."""
    return DSPPInstance(
        datacenters=("near", "far"),
        locations=("v0", "v1"),
        sla_coefficients=np.array([[0.05, 0.08], [0.08, 0.05]]),
        reconfiguration_weights=np.array([1.0, 1.0]),
        capacities=np.array([50.0, 50.0]),
        initial_state=np.zeros((2, 2)),
    )


class TestStaticPlacement:
    def test_picks_cheapest_effective_site(self, asym_instance):
        placement = solve_static_placement(
            asym_instance, np.array([100.0, 100.0]), np.array([1.0, 1.0])
        )
        # Equal prices: the lower-a (closer) DC per location is cheaper.
        assert placement.allocation[0, 0] > 0
        assert placement.allocation[1, 1] > 0
        assert placement.allocation[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_cost_matches_allocation(self, asym_instance):
        prices = np.array([1.0, 3.0])
        placement = solve_static_placement(
            asym_instance, np.array([50.0, 80.0]), prices
        )
        manual = float(placement.allocation.sum(axis=1) @ prices)
        assert placement.cost == pytest.approx(manual, rel=1e-9)

    def test_matches_dspp_single_period_without_recon(self, asym_instance):
        demand = np.array([120.0, 90.0])
        prices = np.array([1.0, 1.4])
        lp = solve_static_placement(asym_instance, demand, prices)
        qp = solve_dspp(
            asym_instance.with_initial_state(np.zeros((2, 2))),
            demand[:, None],
            prices[:, None],
        )
        # The QP pays quadratic reconfiguration from x0=0, but its holding
        # cost at the optimum cannot beat the LP's.
        assert qp.costs.allocation_total >= lp.cost - 1e-6

    def test_infeasible(self, asym_instance):
        with pytest.raises(StaticPlacementInfeasibleError):
            solve_static_placement(
                asym_instance, np.array([1e6, 1e6]), np.array([1.0, 1.0])
            )

    def test_validation(self, asym_instance):
        with pytest.raises(ValueError):
            solve_static_placement(asym_instance, np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            solve_static_placement(asym_instance, -np.ones(2), np.ones(2))


class TestRoundUp:
    def test_ceils(self):
        states = np.array([[[1.2, 3.0], [0.0, 4.7]]])
        assert round_up(states) == pytest.approx(np.array([[[2.0, 3.0], [0.0, 5.0]]]))

    def test_integer_input_unchanged(self):
        states = np.array([[[2.0, 5.0]]])
        assert round_up(states) == pytest.approx(states)


class TestRoundRepair:
    def test_no_overflow_is_plain_ceil(self, asym_instance):
        states = np.full((2, 2, 2), 3.3)
        demand = np.full((2, 2), 10.0)
        repaired = round_repair(asym_instance, states, demand)
        assert repaired == pytest.approx(np.full((2, 2, 2), 4.0))

    def test_repair_respects_capacity_and_demand(self):
        instance = DSPPInstance(
            datacenters=("dc",),
            locations=("v0", "v1"),
            sla_coefficients=np.array([[0.5, 0.5]]),
            reconfiguration_weights=np.ones(1),
            capacities=np.array([9.0]),
            initial_state=np.zeros((1, 2)),
        )
        # Continuous solution 4.2 + 4.2 = 8.4 <= 9; ceil gives 10 > 9.
        states = np.array([[[4.2, 4.2]]])
        demand = np.array([[8.0], [8.0]])  # (V=2, T=1): each location needs 8*0.5=4 servers
        repaired = round_repair(instance, states, demand)
        assert repaired.sum() <= 9.0
        served = (instance.demand_coefficients * repaired[0]).sum(axis=0)
        assert np.all(served >= demand[:, 0] - 1e-9)

    def test_unrepairable_raises(self):
        instance = DSPPInstance(
            datacenters=("dc",),
            locations=("v",),
            sla_coefficients=np.array([[1.0]]),
            reconfiguration_weights=np.ones(1),
            capacities=np.array([4.0]),
            initial_state=np.zeros((1, 1)),
        )
        states = np.array([[[4.5]]])
        demand = np.array([[4.5]])
        with pytest.raises(IntegerRepairError):
            round_repair(instance, states, demand)


class TestIntegerSolve:
    def test_integer_feasible_and_gap_small(self, asym_instance):
        demand = np.tile(np.array([[150.0], [180.0]]), (1, 4))
        prices = np.tile(np.array([[1.0], [1.3]]), (1, 4))
        solution = solve_dspp_integer(asym_instance, demand, prices)
        states = solution.trajectory.states
        assert np.allclose(states, np.round(states))
        coeff = asym_instance.demand_coefficients
        served = np.einsum("lv,tlv->tv", coeff, states)
        assert np.all(served >= demand.T - 1e-9)
        assert solution.objective >= solution.continuous_objective - 1e-6
        # Tens of servers per site: the gap should be small.
        assert solution.integrality_gap < 0.25

    def test_gap_shrinks_with_scale(self, asym_instance):
        def gap(scale: float) -> float:
            demand = np.tile(np.array([[15.0], [18.0]]), (1, 3)) * scale
            prices = np.ones((2, 3))
            return solve_dspp_integer(asym_instance, demand, prices).integrality_gap

        assert gap(10.0) < gap(1.0)


class TestL1Penalty:
    def test_solves_and_meets_demand(self, asym_instance):
        demand = np.tile(np.array([[100.0], [120.0]]), (1, 5))
        prices = np.tile(np.array([[1.0], [1.5]]), (1, 5))
        solution = solve_dspp_l1(asym_instance, demand, prices)
        coeff = asym_instance.demand_coefficients
        served = np.einsum("lv,tlv->tv", coeff, solution.trajectory.states)
        assert np.all(served >= demand.T - 1e-6)
        assert solution.objective == pytest.approx(
            solution.allocation_cost + solution.reconfiguration_cost
        )

    def test_l1_ignores_small_price_wiggles(self):
        # A price wiggle smaller than twice the move cost should cause no
        # migration under L1 (dead-band), while the quadratic controller
        # always migrates a little.
        instance = DSPPInstance(
            datacenters=("a", "b"),
            locations=("v",),
            sla_coefficients=np.array([[0.1], [0.1]]),
            reconfiguration_weights=np.array([5.0, 5.0]),
            capacities=np.full(2, np.inf),
            initial_state=np.array([[10.0], [0.0]]),
        )
        demand = np.full((1, 4), 100.0)
        prices = np.array(
            [[1.00, 1.02, 1.00, 1.02], [1.01, 1.00, 1.01, 1.00]]
        )
        l1 = solve_dspp_l1(instance, demand, prices)
        quad = solve_dspp(instance, demand, prices)
        l1_moves = np.abs(l1.trajectory.controls).sum()
        quad_moves = np.abs(quad.trajectory.controls).sum()
        assert l1_moves == pytest.approx(0.0, abs=1e-6)
        assert quad_moves > 1e-3

    def test_infeasible(self, asym_instance):
        with pytest.raises(L1DSPPInfeasibleError):
            solve_dspp_l1(
                asym_instance, np.full((2, 2), 1e6), np.ones((2, 2))
            )

    def test_validation(self, asym_instance):
        with pytest.raises(ValueError):
            solve_dspp_l1(asym_instance, np.ones((3, 2)), np.ones((2, 2)))


class TestOptimalAssignment:
    def test_routes_everything(self):
        allocation = np.array([[5.0, 5.0], [5.0, 5.0]])
        coeff = np.full((2, 2), 10.0)
        latency = np.array([[1.0, 9.0], [9.0, 1.0]])
        demand = np.array([40.0, 40.0])
        result = optimal_assignment(allocation, demand, coeff, latency)
        assert result.assignment.sum(axis=0) == pytest.approx(demand)
        # All demand fits on the diagonal (cap 50 per pair).
        assert result.assignment[0, 0] == pytest.approx(40.0)
        assert result.assignment[1, 1] == pytest.approx(40.0)

    def test_never_worse_than_proportional(self, rng):
        for _ in range(10):
            L, V = 3, 4
            a = rng.uniform(0.05, 0.2, size=(L, V))
            coeff = 1.0 / a
            latency = rng.uniform(1.0, 50.0, size=(L, V))
            demand = rng.uniform(5.0, 30.0, size=V)
            allocation = a * demand[None, :] * rng.uniform(0.5, 1.0, size=(L, V))
            # Ensure feasibility.
            scale = (allocation * coeff).sum(axis=0) / demand
            allocation /= np.minimum(scale, 1.0)[None, :] * 0.999
            optimal = optimal_assignment(allocation, demand, coeff, latency)
            proportional = proportional_assignment(allocation, demand, coeff)
            prop_latency = float((latency * proportional).sum())
            assert optimal.total_weighted_latency <= prop_latency + 1e-6

    def test_respects_per_pair_capacity(self):
        allocation = np.array([[1.0], [10.0]])
        coeff = np.full((2, 1), 10.0)
        latency = np.array([[1.0], [2.0]])
        result = optimal_assignment(allocation, np.array([50.0]), coeff, latency)
        assert result.assignment[0, 0] <= 10.0 + 1e-9

    def test_infeasible(self):
        with pytest.raises(AssignmentInfeasibleError):
            optimal_assignment(
                np.zeros((1, 1)), np.array([1.0]), np.ones((1, 1)), np.ones((1, 1))
            )

    def test_infeasible_error_names_locations_and_amounts(self):
        # Location 1 is short (demand 5 vs servable 2); location 0 is fine.
        allocation = np.array([[10.0, 2.0]])
        demand = np.array([3.0, 5.0])
        coeff = np.ones((1, 2))
        with pytest.raises(AssignmentInfeasibleError) as excinfo:
            optimal_assignment(allocation, demand, coeff, np.ones((1, 2)))
        message = str(excinfo.value)
        assert "v1" in message and "v0" not in message
        assert "demand 5" in message and "servable 2" in message


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), scale=st.floats(5.0, 50.0))
def test_integer_rounding_always_demand_feasible(seed, scale):
    """Property: round_repair output always serves the demand."""
    rng = np.random.default_rng(seed)
    L, V, T = 2, 3, 3
    a = rng.uniform(0.05, 0.2, size=(L, V))
    instance = DSPPInstance(
        datacenters=("d0", "d1"),
        locations=("v0", "v1", "v2"),
        sla_coefficients=a,
        reconfiguration_weights=np.ones(L),
        capacities=np.full(L, np.inf),
        initial_state=np.zeros((L, V)),
    )
    demand = rng.uniform(1.0, scale, size=(V, T))
    prices = rng.uniform(0.5, 2.0, size=(L, T))
    solution = solve_dspp_integer(instance, demand, prices)
    coeff = instance.demand_coefficients
    served = np.einsum("lv,tlv->tv", coeff, solution.trajectory.states)
    assert np.all(served >= demand.T - 1e-9)
