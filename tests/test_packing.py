"""Tests for the bin-packing substrate (FFD + VM size ladders)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.packing.ffd import (
    first_fit_decreasing,
    is_divisible_ladder,
    optimal_bin_count_divisible,
)
from repro.packing.vmsizes import GOGRID_LADDER, VMSize, doubling_ladder


class TestVMSizes:
    def test_gogrid_has_six_doubling_types(self):
        assert len(GOGRID_LADDER) == 6
        units = [vm.units for vm in GOGRID_LADDER]
        for small, large in zip(units, units[1:]):
            assert large == 2 * small

    def test_doubling_ladder(self):
        ladder = doubling_ladder(4)
        assert [vm.units for vm in ladder] == [1, 2, 4, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            doubling_ladder(0)
        with pytest.raises(ValueError):
            VMSize("x", 0)


class TestFFD:
    def test_simple_pack(self):
        result = first_fit_decreasing([3.0, 3.0, 2.0, 2.0], 5.0)
        assert result.num_bins == 2
        assert result.waste == pytest.approx(0.0)

    def test_waste_accounting(self):
        result = first_fit_decreasing([4.0], 5.0)
        assert result.waste == pytest.approx(1.0)

    def test_empty(self):
        result = first_fit_decreasing([], 10.0)
        assert result.num_bins == 0
        assert result.waste == 0.0

    def test_item_too_big(self):
        with pytest.raises(ValueError, match="exceeds"):
            first_fit_decreasing([11.0], 10.0)

    def test_nonpositive_item(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([0.0], 10.0)

    def test_known_adversarial_case_within_ffd_bound(self):
        # Classic example where FFD is suboptimal for arbitrary sizes.
        items = [0.45, 0.45, 0.35, 0.35, 0.2, 0.2]  # OPT = 2 bins
        result = first_fit_decreasing(items, 1.0)
        assert result.num_bins <= math.ceil(11 / 9 * 2) + 1

    def test_validate_catches_overflow(self):
        from repro.packing.ffd import BinPackingResult

        bad = BinPackingResult(bins=((6.0, 6.0),), bin_capacity=10.0)
        with pytest.raises(ValueError, match="overflows"):
            bad.validate()


class TestDivisibleLadder:
    def test_doubling_is_divisible(self):
        assert is_divisible_ladder([1.0, 2.0, 4.0, 8.0])

    def test_non_divisible(self):
        assert not is_divisible_ladder([2.0, 3.0])

    def test_empty_and_single(self):
        assert is_divisible_ladder([])
        assert is_divisible_ladder([5.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            is_divisible_ladder([0.0, 1.0])

    def test_optimal_count_for_divisible(self):
        items = [1.0] * 3 + [2.0] * 2 + [4.0]
        assert optimal_bin_count_divisible(items, 8.0) == math.ceil(11 / 8)

    def test_optimal_count_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            optimal_bin_count_divisible([2.0, 3.0], 6.0)
        with pytest.raises(ValueError, match="multiple"):
            optimal_bin_count_divisible([2.0, 4.0], 6.0)


@settings(max_examples=80, deadline=None)
@given(
    counts=st.lists(st.integers(0, 10), min_size=4, max_size=4),
    capacity_exp=st.integers(2, 5),
)
def test_ffd_is_optimal_on_doubling_ladders(counts, capacity_exp):
    """Section VI's claim: with GoGrid-style doubling VM sizes and machine
    capacity a power of two, FFD packs into the theoretical minimum number
    of machines (no capacity lost to fragmentation)."""
    sizes = [1.0, 2.0, 4.0, 8.0]
    capacity = float(2**capacity_exp)
    items = []
    for size, count in zip(sizes, counts):
        if size <= capacity:
            items.extend([size] * count)
    if not items:
        return
    result = first_fit_decreasing(items, capacity)
    optimum = optimal_bin_count_divisible(items, capacity)
    assert result.num_bins == optimum
    # All bins but possibly the last are completely full.
    fills = sorted((sum(b) for b in result.bins), reverse=True)
    assert all(f == capacity for f in fills[:-1])
